type frequency = Hourly | Daily | Biweekly | Weekly | Monthly

let seconds = function
  | Hourly -> 3600.
  | Daily -> 86400.
  | Biweekly -> 7. *. 86400. /. 2.
  | Weekly -> 7. *. 86400.
  | Monthly -> 30. *. 86400.

type condition =
  | A_url_extends of string
  | A_url_equals of string
  | A_filename of string
  | A_docid of int
  | A_dtdid of int
  | A_dtd of string
  | A_domain of string
  | A_last_accessed of Xy_events.Atomic.comparator * float
  | A_last_updated of Xy_events.Atomic.comparator * float
  | A_self_contains of string
  | A_self_status of Xy_events.Atomic.status
  | A_element of {
      change : Xy_events.Atomic.status option;
      target : [ `Tag of string | `Var of string ];
      word : (Xy_events.Atomic.scope * string) option;
    }

type monitoring = {
  m_name : string;
  m_select : Xy_query.Ast.select option;
  m_from : Xy_query.Ast.binding list;
  m_where : condition list list;
}

type trigger_spec =
  | T_frequency of frequency
  | T_notification of { subscription : string option; tag : string }

type continuous = {
  c_name : string;
  c_delta : bool;
  c_query : Xy_query.Ast.t;
  c_when : trigger_spec;
}

type report_disjunct =
  | R_count of int
  | R_count_query of string * int
  | R_frequency of frequency
  | R_immediate

type atmost = At_count of int | At_frequency of frequency

type report = {
  r_query : Xy_query.Ast.t option;
  r_when : report_disjunct list;
  r_atmost : atmost option;
  r_archive : frequency option;
}

type refresh = { r_url : string; r_freq : frequency }

type t = {
  name : string;
  monitoring : monitoring list;
  continuous : continuous list;
  report : report option;
  refresh : refresh list;
  virtuals : (string * string) list;
}

let frequency_to_string = function
  | Hourly -> "hourly"
  | Daily -> "daily"
  | Biweekly -> "biweekly"
  | Weekly -> "weekly"
  | Monthly -> "monthly"

let status_to_string = Xy_events.Atomic.status_to_string

let pp_condition ppf = function
  | A_url_extends s -> Format.fprintf ppf "URL extends %S" s
  | A_url_equals s -> Format.fprintf ppf "URL = %S" s
  | A_filename s -> Format.fprintf ppf "filename = %S" s
  | A_docid n -> Format.fprintf ppf "DOCID = %d" n
  | A_dtdid n -> Format.fprintf ppf "DTDID = %d" n
  | A_dtd s -> Format.fprintf ppf "DTD = %S" s
  | A_domain s -> Format.fprintf ppf "domain = %S" s
  | A_last_accessed (c, d) ->
      Format.fprintf ppf "LastAccessed %s %g"
        (match c with Xy_events.Atomic.Before -> "<" | Xy_events.Atomic.After -> ">")
        d
  | A_last_updated (c, d) ->
      Format.fprintf ppf "LastUpdate %s %g"
        (match c with Xy_events.Atomic.Before -> "<" | Xy_events.Atomic.After -> ">")
        d
  | A_self_contains w -> Format.fprintf ppf "self contains %S" w
  | A_self_status s -> Format.fprintf ppf "%s self" (status_to_string s)
  | A_element { change; target; word } ->
      (match change with
      | Some s -> Format.fprintf ppf "%s " (status_to_string s)
      | None -> ());
      (match target with
      | `Tag tag -> Format.fprintf ppf "self\\\\%s" tag
      | `Var v -> Format.pp_print_string ppf v);
      (match word with
      | Some (Xy_events.Atomic.Anywhere, w) -> Format.fprintf ppf " contains %S" w
      | Some (Xy_events.Atomic.Strict, w) ->
          Format.fprintf ppf " strict contains %S" w
      | None -> ())

let pp ppf t =
  Format.fprintf ppf "@[<v>subscription %s@," t.name;
  List.iter
    (fun m ->
      Format.fprintf ppf "monitoring  %% %s@," m.m_name;
      Format.fprintf ppf "  where @[<hv>%a@]@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ or ")
           (fun ppf conjunction ->
             Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ and ")
               pp_condition ppf conjunction))
        m.m_where)
    t.monitoring;
  List.iter
    (fun c ->
      Format.fprintf ppf "continuous %s%s (%s)@,"
        (if c.c_delta then "delta " else "")
        c.c_name
        (match c.c_when with
        | T_frequency f -> frequency_to_string f
        | T_notification { subscription; tag } ->
            (match subscription with Some s -> s ^ "." | None -> "") ^ tag))
    t.continuous;
  List.iter
    (fun r -> Format.fprintf ppf "refresh %S %s@," r.r_url (frequency_to_string r.r_freq))
    t.refresh;
  List.iter
    (fun (s, q) -> Format.fprintf ppf "virtual %s.%s@," s q)
    t.virtuals;
  (match t.report with
  | Some report ->
      Format.fprintf ppf "report when %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " or ")
           (fun ppf d ->
             match d with
             | R_count n -> Format.fprintf ppf "count > %d" n
             | R_count_query (q, n) -> Format.fprintf ppf "count(%s) > %d" q n
             | R_frequency f -> Format.pp_print_string ppf (frequency_to_string f)
             | R_immediate -> Format.pp_print_string ppf "immediate"))
        report.r_when
  | None -> ());
  Format.fprintf ppf "@]"
