(** Compilation of subscriptions to atomic-event conjunctions.

    Each monitoring query's [where] clause becomes one *complex event*
    — a conjunction of {!Xy_events.Atomic.t} conditions — which the
    Subscription Manager registers with the event registry and the
    Monitoring Query Processor.

    Compilation also enforces the controls of §5.4: "we only allow the
    condition extend URL, and not the matching of an arbitrary
    pattern.  Similarly, one would like to prevent the use of contains
    conditions on too common a word such as 'the' or ... to trigger a
    continuous query with too frequent an event", plus the weak-event
    rule of §5.1 ("we disallow where clauses composed solely of a weak
    atomic condition"). *)

exception Rejected of string

type policy = {
  max_conditions : int;  (** per disjunct of a monitoring query *)
  max_disjuncts : int;  (** disjuncts per monitoring query *)
  max_monitoring : int;  (** monitoring queries per subscription *)
  max_continuous : int;  (** continuous queries per subscription *)
  min_prefix_length : int;  (** [URL extends] pattern length floor *)
  stopwords : string list;  (** words [contains] may not monitor *)
  min_period : float;  (** shortest allowed continuous-query period, s *)
}

val default_policy : policy

(** A compiled monitoring query: one complex event per disjunct of
    the (DNF) where clause — a document matching several disjuncts
    yields a single notification (the Subscription Manager
    deduplicates within the per-document batch). *)
type monitoring = {
  cm_name : string;  (** notification tag *)
  cm_disjuncts : Xy_events.Atomic.t list list;  (** the complex events *)
  cm_select : Xy_query.Ast.select option;
  cm_from : Xy_query.Ast.binding list;
}

(** [compile_monitoring ~policy m] — raises {!Rejected} on policy or
    well-formedness violations. *)
val compile_monitoring : ?policy:policy -> S_ast.monitoring -> monitoring

(** [validate ~policy subscription] checks subscription-level rules
    (section counts, continuous-query frequencies, report presence
    rules) and returns the compiled monitoring queries. *)
val validate : ?policy:policy -> S_ast.t -> monitoring list
