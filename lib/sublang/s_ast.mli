(** Abstract syntax of the subscription language (paper §5).

    A subscription bundles monitoring queries (filters over the
    document stream), continuous queries (periodic or
    notification-triggered warehouse queries), a report specification
    and refresh statements:

    {v
    subscription MyXyleme
    monitoring
      select <UpdatedPage url=URL/>
      where URL extends ``http://inria.fr/Xy/'' and modified self
    monitoring
      select X
      from self//Member X
      where URL = ``http://inria.fr/Xy/members.xml'' and new X
    continuous ReferenceXyleme
      select ...
      try biweekly
    refresh ``http://inria.fr/Xy/members.xml'' weekly
    report
      select ...
      when notifications.count > 100
    v} *)

type frequency = Hourly | Daily | Biweekly | Weekly | Monthly

(** [seconds f] is the period of a frequency in (virtual) seconds;
    [biweekly] is twice a week. *)
val seconds : frequency -> float

(** Atomic conditions of a monitoring query's [where] clause. *)
type condition =
  | A_url_extends of string
  | A_url_equals of string
  | A_filename of string
  | A_docid of int
  | A_dtdid of int
  | A_dtd of string
  | A_domain of string
  | A_last_accessed of Xy_events.Atomic.comparator * float
  | A_last_updated of Xy_events.Atomic.comparator * float
  | A_self_contains of string
  | A_self_status of Xy_events.Atomic.status
      (** [new self], [modified self], ... *)
  | A_element of {
      change : Xy_events.Atomic.status option;
      target : [ `Tag of string | `Var of string ];
          (** [self\\product ...] or [new X] for a from-variable [X] *)
      word : (Xy_events.Atomic.scope * string) option;
    }

type monitoring = {
  m_name : string;
      (** the notification tag: the root tag of the select construct,
          or ["Notification"] — continuous queries trigger on it *)
  m_select : Xy_query.Ast.select option;
  m_from : Xy_query.Ast.binding list;
  m_where : condition list list;
      (** disjunctive normal form: a disjunction of conjunctions.  The
          original paper supports a single conjunction; disjunctions
          are the extension sketched in its conclusion ("complex
          events that would include disjunctions of atomic
          conditions").  Each disjunct must contain a strong
          condition. *)
}

(** When to (re-)evaluate a continuous query. *)
type trigger_spec =
  | T_frequency of frequency
  | T_notification of { subscription : string option; tag : string }
      (** [when XylemeCompetitors.ChangeInMyProducts] *)

type continuous = {
  c_name : string;
  c_delta : bool;  (** [continuous delta Name ...] *)
  c_query : Xy_query.Ast.t;
  c_when : trigger_spec;
}

type report_disjunct =
  | R_count of int  (** [count > n] / [notifications.count > n] *)
  | R_count_query of string * int  (** [count(UpdatedPage) > n] *)
  | R_frequency of frequency
  | R_immediate

type atmost = At_count of int | At_frequency of frequency

type report = {
  r_query : Xy_query.Ast.t option;
  r_when : report_disjunct list;  (** disjunction; compulsory *)
  r_atmost : atmost option;
  r_archive : frequency option;
}

type refresh = { r_url : string; r_freq : frequency }

type t = {
  name : string;
  monitoring : monitoring list;
  continuous : continuous list;
  report : report option;
  refresh : refresh list;
  virtuals : (string * string) list;
      (** [(subscription, query-name)] pairs of shared queries *)
}

val frequency_to_string : frequency -> string
val pp : Format.formatter -> t -> unit
