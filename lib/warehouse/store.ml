type entry = { meta : Meta.t; tree : Xy_xml.Xid.tree option }

type record = {
  mutable entry : entry;
  gen : Xy_xml.Xid.gen;
  (* Deltas leading *to* each version: (v, delta from v-1 to v),
     newest first. *)
  mutable history : (int * Xy_diff.Delta.t) list;
}

type t = {
  keep_versions : int;
  by_url : (string, record) Hashtbl.t;
  by_docid : (int, string) Hashtbl.t;
  docids : (string, int) Hashtbl.t;
  dtdids : (string, int) Hashtbl.t;
  mutable next_docid : int;
  mutable next_dtdid : int;
  lock : Mutex.t;
      (* The parallel crawl pipeline loads disjoint URLs from several
         domains at once; the lock keeps the shared tables (and the id
         counters) coherent under that concurrency.  Per-URL update
         sequences remain single-threaded by routing (same URL -> same
         worker), so only table integrity needs protecting here, not
         compound find-then-put atomicity. *)
}

let create ?(keep_versions = 10) () =
  {
    keep_versions;
    by_url = Hashtbl.create 1024;
    by_docid = Hashtbl.create 1024;
    docids = Hashtbl.create 1024;
    dtdids = Hashtbl.create 64;
    next_docid = 1;
    next_dtdid = 1;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let find_unlocked t url =
  Option.map (fun r -> r.entry) (Hashtbl.find_opt t.by_url url)

let find t url = locked t (fun () -> find_unlocked t url)

let find_by_docid t docid =
  locked t (fun () ->
      Option.bind (Hashtbl.find_opt t.by_docid docid) (find_unlocked t))

let mem t url = locked t (fun () -> Hashtbl.mem t.by_url url)
let document_count t = locked t (fun () -> Hashtbl.length t.by_url)

let record t url =
  match Hashtbl.find_opt t.by_url url with
  | Some r -> r
  | None ->
      let r =
        {
          entry =
            {
              meta =
                {
                  Meta.url;
                  docid = 0;
                  kind = Meta.Html_doc;
                  domain = None;
                  dtd = None;
                  dtdid = None;
                  signature = "";
                  last_accessed = 0.;
                  last_updated = 0.;
                  version = 0;
                };
              tree = None;
            };
          gen = Xy_xml.Xid.gen ();
          history = [];
        }
      in
      Hashtbl.replace t.by_url url r;
      r

let gen t ~url = locked t (fun () -> (record t url).gen)

let put t entry ~delta =
  locked t @@ fun () ->
  let url = entry.meta.Meta.url in
  let r = record t url in
  r.entry <- entry;
  Hashtbl.replace t.by_docid entry.meta.Meta.docid url;
  if not (Xy_diff.Delta.is_empty delta) || entry.meta.Meta.version = 1 then begin
    r.history <- (entry.meta.Meta.version, delta) :: r.history;
    let rec truncate n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: truncate (n - 1) rest
    in
    r.history <- truncate t.keep_versions r.history
  end

let remove t ~url =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.by_url url with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.by_docid r.entry.meta.Meta.docid;
      Hashtbl.remove t.by_url url

let allocate_docid t ~url =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.docids url with
  | Some id -> id
  | None ->
      let id = t.next_docid in
      t.next_docid <- id + 1;
      Hashtbl.replace t.docids url id;
      id

let has_docid t ~url = locked t (fun () -> Hashtbl.mem t.docids url)

let allocate_dtdid t ~dtd =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.dtdids dtd with
  | Some id -> id
  | None ->
      let id = t.next_dtdid in
      t.next_dtdid <- id + 1;
      Hashtbl.replace t.dtdids dtd id;
      id

let reconstruct t ~url ~version =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.by_url url with
  | None -> None
  | Some r -> (
      match r.entry.tree with
      | None -> None
      | Some current ->
          let current_version = r.entry.meta.Meta.version in
          if version > current_version || version < 1 then None
          else begin
            (* Unwind deltas newest-first until we reach [version]. *)
            let rec unwind tree past = function
              | _ when past = version -> Some tree
              | [] -> None
              | (v, delta) :: rest ->
                  if v <> past then None
                  else
                    (match
                       Xy_diff.Apply.apply tree (Xy_diff.Delta.invert delta)
                     with
                    | exception Failure _ -> None
                    | previous -> unwind previous (past - 1) rest)
            in
            Option.map Xy_xml.Xid.strip (unwind current current_version r.history)
          end)

(* Runs [f] under the store lock: callbacks must not re-enter the
   store (every current caller only reads the entry it is handed). *)
let iter f t = locked t (fun () -> Hashtbl.iter (fun _ r -> f r.entry) t.by_url)

(* {2 Durable snapshot}

   A snapshot captures every current version (meta + printed tree)
   and the id-allocation tables.  Delta history is *not* captured:
   [reconstruct] starts empty after a restore — the archive window
   refills as new versions arrive.  Trees are re-labelled with fresh
   XIDs on decode; XIDs are process-local identities (every consumer
   strips them before leaving the warehouse), so lineages diverge
   harmlessly. *)

module Codec = Xy_util.Codec

let encode_opt_string buf = function
  | Some s ->
      Codec.bool buf true;
      Codec.string buf s
  | None -> Codec.bool buf false

let decode_opt_string r =
  if Codec.read_bool r then Some (Codec.read_string r) else None

let encode_opt_int buf = function
  | Some n ->
      Codec.bool buf true;
      Codec.int buf n
  | None -> Codec.bool buf false

let decode_opt_int r =
  if Codec.read_bool r then Some (Codec.read_int r) else None

let sorted_bindings table =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let encode_snapshot t =
  locked t @@ fun () ->
  let buf = Buffer.create 4096 in
  Codec.int buf t.next_docid;
  Codec.int buf t.next_dtdid;
  Codec.list buf
    (fun buf (url, id) ->
      Codec.string buf url;
      Codec.int buf id)
    (sorted_bindings t.docids);
  Codec.list buf
    (fun buf (dtd, id) ->
      Codec.string buf dtd;
      Codec.int buf id)
    (sorted_bindings t.dtdids);
  Codec.list buf
    (fun buf (url, r) ->
      let m = r.entry.meta in
      Codec.string buf url;
      Codec.int buf m.Meta.docid;
      Codec.bool buf (m.Meta.kind = Meta.Xml_doc);
      encode_opt_string buf m.Meta.domain;
      encode_opt_string buf m.Meta.dtd;
      encode_opt_int buf m.Meta.dtdid;
      Codec.string buf m.Meta.signature;
      Codec.float buf m.Meta.last_accessed;
      Codec.float buf m.Meta.last_updated;
      Codec.int buf m.Meta.version;
      encode_opt_string buf
        (Option.map
           (fun tree ->
             Xy_xml.Printer.element_to_string (Xy_xml.Xid.strip tree))
           r.entry.tree))
    (sorted_bindings t.by_url);
  Buffer.contents buf

let decode_snapshot t payload =
  locked t @@ fun () ->
  let r = Codec.reader payload in
  let next_docid = Codec.read_int r in
  let next_dtdid = Codec.read_int r in
  let docids =
    Codec.read_list r (fun r ->
        let url = Codec.read_string r in
        let id = Codec.read_int r in
        (url, id))
  in
  let dtdids =
    Codec.read_list r (fun r ->
        let dtd = Codec.read_string r in
        let id = Codec.read_int r in
        (dtd, id))
  in
  let records =
    Codec.read_list r (fun r ->
        let url = Codec.read_string r in
        let docid = Codec.read_int r in
        let xml = Codec.read_bool r in
        let domain = decode_opt_string r in
        let dtd = decode_opt_string r in
        let dtdid = decode_opt_int r in
        let signature = Codec.read_string r in
        let last_accessed = Codec.read_float r in
        let last_updated = Codec.read_float r in
        let version = Codec.read_int r in
        let tree = decode_opt_string r in
        ( url,
          {
            Meta.url;
            docid;
            kind = (if xml then Meta.Xml_doc else Meta.Html_doc);
            domain;
            dtd;
            dtdid;
            signature;
            last_accessed;
            last_updated;
            version;
          },
          tree ))
  in
  Codec.expect_end r;
  Hashtbl.reset t.by_url;
  Hashtbl.reset t.by_docid;
  Hashtbl.reset t.docids;
  Hashtbl.reset t.dtdids;
  t.next_docid <- next_docid;
  t.next_dtdid <- next_dtdid;
  List.iter (fun (url, id) -> Hashtbl.replace t.docids url id) docids;
  List.iter (fun (dtd, id) -> Hashtbl.replace t.dtdids dtd id) dtdids;
  List.iter
    (fun (url, meta, tree) ->
      let rec' = record t url in
      let tree =
        Option.map
          (fun printed ->
            Xy_xml.Xid.label rec'.gen (Xy_xml.Parser.parse_element printed))
          tree
      in
      rec'.entry <- { meta; tree };
      rec'.history <- [];
      Hashtbl.replace t.by_docid meta.Meta.docid url)
    records
