type entry = { meta : Meta.t; tree : Xy_xml.Xid.tree option }

type record = {
  mutable entry : entry;
  gen : Xy_xml.Xid.gen;
  (* Deltas leading *to* each version: (v, delta from v-1 to v),
     newest first. *)
  mutable history : (int * Xy_diff.Delta.t) list;
}

type t = {
  keep_versions : int;
  by_url : (string, record) Hashtbl.t;
  by_docid : (int, string) Hashtbl.t;
  docids : (string, int) Hashtbl.t;
  dtdids : (string, int) Hashtbl.t;
  mutable next_docid : int;
  mutable next_dtdid : int;
}

let create ?(keep_versions = 10) () =
  {
    keep_versions;
    by_url = Hashtbl.create 1024;
    by_docid = Hashtbl.create 1024;
    docids = Hashtbl.create 1024;
    dtdids = Hashtbl.create 64;
    next_docid = 1;
    next_dtdid = 1;
  }

let find t url =
  Option.map (fun r -> r.entry) (Hashtbl.find_opt t.by_url url)

let find_by_docid t docid =
  Option.bind (Hashtbl.find_opt t.by_docid docid) (find t)

let mem t url = Hashtbl.mem t.by_url url
let document_count t = Hashtbl.length t.by_url

let record t url =
  match Hashtbl.find_opt t.by_url url with
  | Some r -> r
  | None ->
      let r =
        {
          entry =
            {
              meta =
                {
                  Meta.url;
                  docid = 0;
                  kind = Meta.Html_doc;
                  domain = None;
                  dtd = None;
                  dtdid = None;
                  signature = "";
                  last_accessed = 0.;
                  last_updated = 0.;
                  version = 0;
                };
              tree = None;
            };
          gen = Xy_xml.Xid.gen ();
          history = [];
        }
      in
      Hashtbl.replace t.by_url url r;
      r

let gen t ~url = (record t url).gen

let put t entry ~delta =
  let url = entry.meta.Meta.url in
  let r = record t url in
  r.entry <- entry;
  Hashtbl.replace t.by_docid entry.meta.Meta.docid url;
  if not (Xy_diff.Delta.is_empty delta) || entry.meta.Meta.version = 1 then begin
    r.history <- (entry.meta.Meta.version, delta) :: r.history;
    let rec truncate n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: truncate (n - 1) rest
    in
    r.history <- truncate t.keep_versions r.history
  end

let remove t ~url =
  match Hashtbl.find_opt t.by_url url with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.by_docid r.entry.meta.Meta.docid;
      Hashtbl.remove t.by_url url

let allocate_docid t ~url =
  match Hashtbl.find_opt t.docids url with
  | Some id -> id
  | None ->
      let id = t.next_docid in
      t.next_docid <- id + 1;
      Hashtbl.replace t.docids url id;
      id

let allocate_dtdid t ~dtd =
  match Hashtbl.find_opt t.dtdids dtd with
  | Some id -> id
  | None ->
      let id = t.next_dtdid in
      t.next_dtdid <- id + 1;
      Hashtbl.replace t.dtdids dtd id;
      id

let reconstruct t ~url ~version =
  match Hashtbl.find_opt t.by_url url with
  | None -> None
  | Some r -> (
      match r.entry.tree with
      | None -> None
      | Some current ->
          let current_version = r.entry.meta.Meta.version in
          if version > current_version || version < 1 then None
          else begin
            (* Unwind deltas newest-first until we reach [version]. *)
            let rec unwind tree past = function
              | _ when past = version -> Some tree
              | [] -> None
              | (v, delta) :: rest ->
                  if v <> past then None
                  else
                    (match
                       Xy_diff.Apply.apply tree (Xy_diff.Delta.invert delta)
                     with
                    | exception Failure _ -> None
                    | previous -> unwind previous (past - 1) rest)
            in
            Option.map Xy_xml.Xid.strip (unwind current current_version r.history)
          end)

let iter f t = Hashtbl.iter (fun _ r -> f r.entry) t.by_url
