(** Per-document metadata.

    This is the information the URL manager gathers about a page and
    that URL-alerter conditions test: URL, DOCID, DTDID, semantic
    domain, signature, access/update dates (§5.1). *)

type kind = Xml_doc | Html_doc

type t = {
  url : string;
  docid : int;  (** internal identifier, stable across versions *)
  kind : kind;
  domain : string option;  (** semantic domain, e.g. ["biology"] *)
  dtd : string option;  (** DTD identifier (system id or fingerprint) *)
  dtdid : int option;  (** internal DTD code *)
  signature : string;  (** content hash — change detection for HTML *)
  last_accessed : float;  (** when the page was last fetched *)
  last_updated : float;  (** when a content change was last detected *)
  version : int;  (** 1 for the first stored version *)
}

(** [filename url] is the tail of the URL, e.g.
    [filename "http://x/a/index.html" = "index.html"]. *)
val filename : string -> string

val pp : Format.formatter -> t -> unit
