type kind = Xml_doc | Html_doc

type t = {
  url : string;
  docid : int;
  kind : kind;
  domain : string option;
  dtd : string option;
  dtdid : int option;
  signature : string;
  last_accessed : float;
  last_updated : float;
  version : int;
}

let filename url =
  match String.rindex_opt url '/' with
  | None -> url
  | Some i -> String.sub url (i + 1) (String.length url - i - 1)

let pp ppf t =
  Format.fprintf ppf "%s (docid=%d, v%d, %s%s)" t.url t.docid t.version
    (match t.kind with Xml_doc -> "xml" | Html_doc -> "html")
    (match t.domain with None -> "" | Some d -> ", domain=" ^ d)
