type t = {
  by_dtd : (string, string) Hashtbl.t;
  by_keyword : (string, string) Hashtbl.t;
}

let create () = { by_dtd = Hashtbl.create 64; by_keyword = Hashtbl.create 64 }
let register_dtd t ~dtd ~domain = Hashtbl.replace t.by_dtd dtd domain

let register_keyword t ~keyword ~domain =
  Hashtbl.replace t.by_keyword (String.lowercase_ascii keyword) domain

let url_segments url =
  String.split_on_char '/' url
  |> List.concat_map (String.split_on_char '.')
  |> List.filter (fun s -> s <> "")

let classify t ~url ~dtd ~tags =
  let by_dtd = Option.bind dtd (Hashtbl.find_opt t.by_dtd) in
  match by_dtd with
  | Some domain -> Some domain
  | None -> (
      let lookup s = Hashtbl.find_opt t.by_keyword (String.lowercase_ascii s) in
      match List.find_map lookup tags with
      | Some domain -> Some domain
      | None -> List.find_map lookup (url_segments url))

let domains t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun _ d -> Hashtbl.replace seen d ()) t.by_dtd;
  Hashtbl.iter (fun _ d -> Hashtbl.replace seen d ()) t.by_keyword;
  List.sort compare (List.of_seq (Hashtbl.to_seq_keys seen))
