(** The versioned document repository.

    Stands in for Natix (the paper's tree repository): stores the
    current XID-labelled tree of each warehoused XML document plus a
    bounded chain of deltas, so that old versions can be reconstructed
    ("the new version of a document can be constructed based on an old
    version and the delta" — we store the chain backwards for the
    archive).  HTML pages are not warehoused; only their signature is
    kept, in the metadata. *)

type entry = {
  meta : Meta.t;
  tree : Xy_xml.Xid.tree option;  (** current version; [None] for HTML *)
}

type t

(** [create ~keep_versions ()] — [keep_versions] bounds the delta
    chain per document (default 10).

    Every operation is serialized behind an internal mutex, so the
    parallel crawl pipeline's loader domains can warehouse disjoint
    URLs concurrently.  Compound read-modify-write sequences on a
    *single* URL (find, diff, put) are not made atomic here — callers
    keep them race-free by routing each URL to one worker. *)
val create : ?keep_versions:int -> unit -> t

val find : t -> string -> entry option
val find_by_docid : t -> int -> entry option
val mem : t -> string -> bool
val document_count : t -> int

(** [gen t ~url] is the XID generator of the document's lineage
    (creating it on first use) — the Loader labels new versions with
    it. *)
val gen : t -> url:string -> Xy_xml.Xid.gen

(** [put t entry ~delta] stores a new current version; [delta] is the
    change from the previous version (empty for first insertion). *)
val put : t -> entry -> delta:Xy_diff.Delta.t -> unit

(** [remove t ~url] drops a document (page disappeared). *)
val remove : t -> url:string -> unit

(** [allocate_docid t ~url] returns the stable DOCID for [url],
    allocating on first sight. *)
val allocate_docid : t -> url:string -> int

(** [has_docid t ~url] — whether a DOCID is already allocated for
    [url].  The parallel batch path pre-allocates ids serially (and
    journals only the fresh ones) before fanning documents out, so
    DOCID numbering never depends on load completion order. *)
val has_docid : t -> url:string -> bool

(** [allocate_dtdid t ~dtd] returns the stable DTDID for a DTD
    identifier. *)
val allocate_dtdid : t -> dtd:string -> int

(** [reconstruct t ~url ~version] rebuilds an archived version by
    unwinding deltas from the current tree.  [None] if the version
    fell off the retained window or the document is unknown/HTML. *)
val reconstruct : t -> url:string -> version:int -> Xy_xml.Types.element option

(** [iter f t] iterates over current entries. *)
val iter : (entry -> unit) -> t -> unit

(** {2 Durability}

    A snapshot captures every current version (metadata plus printed
    tree) and the DOCID/DTDID allocation tables.  Delta history is not
    captured — {!reconstruct} starts empty after a restore and the
    archive window refills with new versions.  Trees are re-labelled
    with fresh XIDs on decode (XIDs are process-local; consumers strip
    them before they escape the warehouse). *)

val encode_snapshot : t -> string

(** Replaces the store contents wholesale.  Raises
    {!Xy_util.Codec.Malformed} on damage. *)
val decode_snapshot : t -> string -> unit
