(** The loading pipeline: fetch result → parsed, classified,
    versioned warehouse entry.

    For each page handed over by the crawler the loader parses it (XML
    only — HTML pages are not warehoused, "we have their signature and
    we can only detect whether they have changed or not"), computes
    the content signature, determines the change status, diffs against
    the stored version and updates the repository.  The returned
    {!result} is exactly what the alerters need to detect atomic
    events. *)

type status = New | Unchanged | Updated

type result = {
  meta : Meta.t;
  status : status;
  doc : Xy_xml.Types.doc option;  (** parsed document (XML only) *)
  tree : Xy_xml.Xid.tree option;  (** new current labelled tree (XML only) *)
  delta : Xy_diff.Delta.t;  (** changes vs the stored version ([[]] if new/unchanged/HTML) *)
}

type t

(** Loading metrics (new/updated/unchanged/deleted/rejected counters
    and a load-latency histogram) are registered under the [warehouse]
    stage of [obs] (default {!Xy_obs.Obs.default}). *)
val create :
  ?domains:Domains.t ->
  ?obs:Xy_obs.Obs.t ->
  store:Store.t ->
  clock:Xy_util.Clock.t ->
  unit ->
  t

val store : t -> Store.t
val domains : t -> Domains.t

(** How to interpret the fetched content. *)
type content_kind = Xml | Html | Auto

exception Rejected of string
(** Raised when an XML page does not parse: the warehouse refuses the
    document (the crawler will retry on the next refresh). *)

(** [load t ~url ~content ~kind] ingests one fetched page. *)
val load : t -> url:string -> content:string -> kind:content_kind -> result

(** [delete t ~url] records the disappearance of a page and removes it
    from the warehouse.  Returns the last metadata if the page was
    known. *)
val delete : t -> url:string -> Meta.t option

(** [validate result] checks a loaded XML document against the
    declarations of its internal DTD subset, if any ([[]] for HTML,
    undeclared or declaration-free documents).  The warehouse stores
    nonconforming documents anyway — the web is messy — but the
    violations are available to loaders that want to log or filter. *)
val validate : result -> Xy_xml.Dtd.violation list
