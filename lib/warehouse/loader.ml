type status = New | Unchanged | Updated

type result = {
  meta : Meta.t;
  status : status;
  doc : Xy_xml.Types.doc option;
  tree : Xy_xml.Xid.tree option;
  delta : Xy_diff.Delta.t;
}

module Obs = Xy_obs.Obs

type metrics = {
  m_new : Obs.Counter.t;
  m_updated : Obs.Counter.t;
  m_unchanged : Obs.Counter.t;
  m_deleted : Obs.Counter.t;
  m_rejected : Obs.Counter.t;
  m_load_latency : Obs.Histogram.t;
}

type t = {
  store : Store.t;
  domains : Domains.t;
  clock : Xy_util.Clock.t;
  metrics : metrics;
}

let stage = "warehouse"

let create ?domains ?(obs = Obs.default) ~store ~clock () =
  let domains = match domains with Some d -> d | None -> Domains.create () in
  {
    store;
    domains;
    clock;
    metrics =
      {
        m_new = Obs.counter obs ~stage "loaded_new";
        m_updated = Obs.counter obs ~stage "loaded_updated";
        m_unchanged = Obs.counter obs ~stage "loaded_unchanged";
        m_deleted = Obs.counter obs ~stage "deleted";
        m_rejected = Obs.counter obs ~stage "rejected";
        m_load_latency = Obs.histogram obs ~stage "load_latency";
      };
  }

let store t = t.store
let domains t = t.domains

type content_kind = Xml | Html | Auto

exception Rejected of string

let looks_like_xml content =
  let content = String.trim content in
  String.length content > 0
  && content.[0] = '<'
  && not
       (String.length content >= 5
       && String.lowercase_ascii (String.sub content 0 5) = "<html")

let parse_xml ~strict content =
  match Xy_xml.Parser.parse content with
  | doc -> Some doc
  | exception Xy_xml.Parser.Error { line; column; message } ->
      if strict then
        raise
          (Rejected (Printf.sprintf "line %d, column %d: %s" line column message))
      else None

let load t ~url ~content ~kind =
  Obs.Histogram.time t.metrics.m_load_latency @@ fun () ->
  let now = Xy_util.Clock.now t.clock in
  let doc =
    try
      match kind with
      | Xml -> parse_xml ~strict:true content
      | Html -> None
      | Auto ->
          if looks_like_xml content then parse_xml ~strict:false content
          else None
    with Rejected _ as e ->
      Obs.Counter.incr t.metrics.m_rejected;
      raise e
  in
  let signature = Xy_util.Hashing.signature content in
  let docid = Store.allocate_docid t.store ~url in
  let previous = Store.find t.store url in
  let dtd = Option.map (fun d -> Xy_xml.Dtd.identifier (Xy_xml.Dtd.of_doc d)) doc in
  let dtdid = Option.map (fun d -> Store.allocate_dtdid t.store ~dtd:d) dtd in
  let tags =
    match doc with Some d -> Xy_xml.Types.tags d.Xy_xml.Types.root | None -> []
  in
  let domain = Domains.classify t.domains ~url ~dtd ~tags in
  let meta_kind =
    match doc with Some _ -> Meta.Xml_doc | None -> Meta.Html_doc
  in
  match previous with
  | None ->
      (* First sight of this page. *)
      let tree =
        match doc with
        | Some d ->
            Some (Xy_xml.Xid.label (Store.gen t.store ~url) d.Xy_xml.Types.root)
        | None -> None
      in
      let meta =
        {
          Meta.url;
          docid;
          kind = meta_kind;
          domain;
          dtd;
          dtdid;
          signature;
          last_accessed = now;
          last_updated = now;
          version = 1;
        }
      in
      Store.put t.store { Store.meta; tree } ~delta:[];
      Obs.Counter.incr t.metrics.m_new;
      { meta; status = New; doc; tree; delta = [] }
  | Some old_entry ->
      let old_meta = old_entry.Store.meta in
      if old_meta.Meta.signature = signature then begin
        (* Same content: refresh the access date only. *)
        let meta = { old_meta with Meta.last_accessed = now } in
        Store.put t.store { Store.meta; tree = old_entry.Store.tree } ~delta:[];
        Obs.Counter.incr t.metrics.m_unchanged;
        { meta; status = Unchanged; doc; tree = old_entry.Store.tree; delta = [] }
      end
      else begin
        let delta, tree =
          match doc, old_entry.Store.tree with
          | Some d, Some old_tree ->
              let delta, new_tree =
                Xy_diff.Diff.diff ~gen:(Store.gen t.store ~url) old_tree
                  d.Xy_xml.Types.root
              in
              (delta, Some new_tree)
          | Some d, None ->
              (* Was HTML (or unparsed), now XML: start a lineage. *)
              ( [],
                Some (Xy_xml.Xid.label (Store.gen t.store ~url) d.Xy_xml.Types.root)
              )
          | None, _ -> ([], None)
        in
        let meta =
          {
            old_meta with
            Meta.kind = meta_kind;
            domain;
            dtd;
            dtdid;
            signature;
            last_accessed = now;
            last_updated = now;
            version = old_meta.Meta.version + 1;
          }
        in
        Store.put t.store { Store.meta; tree } ~delta;
        Obs.Counter.incr t.metrics.m_updated;
        { meta; status = Updated; doc; tree; delta }
      end

let validate result =
  match result.doc with
  | None -> []
  | Some doc ->
      Xy_xml.Dtd.validate
        (Xy_xml.Dtd.declarations_of_doc doc)
        doc.Xy_xml.Types.root

let delete t ~url =
  match Store.find t.store url with
  | None -> None
  | Some entry ->
      Store.remove t.store ~url;
      Obs.Counter.incr t.metrics.m_deleted;
      Some entry.Store.meta
