(** Semantic-domain classification.

    "The main role of the semantic module is to classify all the XML
    resources into semantic domains" (§2.1); classification drives
    both data distribution and the [domain = string] conditions of the
    subscription language.  Classification is by DTD first ("automatic
    semantic classification of all DTDs"), with a tag-vocabulary
    keyword fallback for undeclared documents. *)

type t

val create : unit -> t

(** [register_dtd t ~dtd ~domain] maps a DTD identifier to a domain. *)
val register_dtd : t -> dtd:string -> domain:string -> unit

(** [register_keyword t ~keyword ~domain] maps a tag or URL keyword to
    a domain (fallback classification). *)
val register_keyword : t -> keyword:string -> domain:string -> unit

(** [classify t ~url ~dtd ~tags] picks a domain: the DTD mapping wins;
    otherwise the first tag (then URL segment) with a keyword
    mapping. *)
val classify : t -> url:string -> dtd:string option -> tags:string list -> string option

(** [domains t] lists the known domains. *)
val domains : t -> string list
