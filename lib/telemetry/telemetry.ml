(* A deliberately minimal HTTP/1.1 server: connections served serially
   on the accept thread, every response closed.  It exists to expose
   read-only telemetry (scrapes are rare and tiny), not to serve
   traffic.  The socket and accept loop live in
   [Xy_serve.Listener] — shared with the wire-protocol server — so
   both endpoints get the same SO_REUSEADDR, bounded-backlog and
   close-once shutdown discipline instead of each growing its own. *)

let log_src = Logs.Src.create "xy.telemetry" ~doc:"Telemetry endpoint"

module Log = (val Logs.src_log log_src : Logs.LOG)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; version=0.0.4; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

let jsonl ?(status = 200) body =
  { status; content_type = "application/x-ndjson"; body }

type t = { listener : Xy_serve.Listener.t }

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Other"

(* Read the request head (line + headers) without consuming a body:
   the endpoints are all GET, so everything up to CRLFCRLF is enough. *)
let read_request_target fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec fill () =
    if Buffer.length buf > 16384 then None
    else
      let seen = Buffer.contents buf in
      let has_end =
        let rec scan i =
          i >= 0
          && (String.length seen >= i + 4
              && String.sub seen i 4 = "\r\n\r\n"
             || scan (i - 1))
        in
        String.length seen >= 4 && scan (String.length seen - 4)
      in
      if has_end then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if seen = "" then None else Some seen
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            fill ()
        | exception Unix.Unix_error _ -> None
  in
  match fill () with
  | None -> None
  | Some head -> (
      match String.index_opt head '\r' with
      | None -> None
      | Some eol -> (
          match String.split_on_char ' ' (String.sub head 0 eol) with
          | [ meth; target; _version ] ->
              (* strip any query string: routes are plain paths *)
              let path =
                match String.index_opt target '?' with
                | Some q -> String.sub target 0 q
                | None -> target
              in
              Some (meth, path)
          | _ -> None))

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (status_text status) content_type (String.length body)
  in
  let payload = head ^ body in
  let n = String.length payload in
  let rec push off =
    if off < n then
      match Unix.write_substring fd payload off (n - off) with
      | written -> push (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
  in
  try push 0 with Unix.Unix_error _ -> ()

let handle routes fd =
  let response =
    match read_request_target fd with
    | None -> text ~status:500 "unreadable request\n"
    | Some (meth, _) when meth <> "GET" && meth <> "HEAD" ->
        text ~status:405 "only GET is served here\n"
    | Some (_, path) -> (
        match List.assoc_opt path routes with
        | None ->
            let known = String.concat " " (List.map fst routes) in
            text ~status:404 (Printf.sprintf "no route %s (try: %s)\n" path known)
        | Some produce -> (
            try produce ()
            with e ->
              text ~status:500
                (Printf.sprintf "handler failed: %s\n" (Printexc.to_string e))))
  in
  write_response fd response

(* Telemetry shares the wire server's admission machinery: a scrape
   arriving while the process is over its connection budget gets a
   proper 503 with a Retry-After, not a silent RST. *)
let shed_response retry_after fd _addr =
  let body = "over capacity, retry later\n" in
  let head =
    Printf.sprintf
      "HTTP/1.1 503 Service Unavailable\r\n\
       Content-Type: text/plain\r\n\
       Content-Length: %d\r\n\
       Retry-After: %d\r\n\
       Connection: close\r\n\
       \r\n"
      (String.length body)
      (int_of_float (Float.max 1. (Float.ceil retry_after)))
  in
  let payload = head ^ body in
  try ignore (Unix.write_substring fd payload 0 (String.length payload))
  with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ?admit ?(retry_after = 1.) ~port ~routes () =
  let shed = Option.map (fun _ -> shed_response retry_after) admit in
  let listener =
    Xy_serve.Listener.start ~host ~backlog:16 ~port ?admit ?shed
      ~handle:(fun client _addr ->
        (try handle routes client with _ -> ());
        try Unix.close client with Unix.Unix_error _ -> ())
      ()
  in
  let t = { listener } in
  Log.info (fun m ->
      m "telemetry endpoint on http://%s:%d (%s)" host
        (Xy_serve.Listener.port t.listener)
        (String.concat " " (List.map fst routes)));
  t

let port t = Xy_serve.Listener.port t.listener
let stop t = Xy_serve.Listener.stop t.listener

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition of a metrics snapshot. *)

module Obs = Xy_obs.Obs

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus_of_snapshot (snapshot : Obs.Snapshot.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let typed = Hashtbl.create 32 in
  let declare name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      add "# TYPE %s %s\n" name kind
    end
  in
  List.iter
    (fun entry ->
      let stage = sanitize entry.Obs.Snapshot.stage in
      let name =
        Printf.sprintf "xyleme_%s" (sanitize entry.Obs.Snapshot.name)
      in
      match entry.Obs.Snapshot.value with
      | Obs.Snapshot.Counter n ->
          let name = name ^ "_total" in
          declare name "counter";
          add "%s{stage=\"%s\"} %d\n" name stage n
      | Obs.Snapshot.Gauge v ->
          declare name "gauge";
          add "%s{stage=\"%s\"} %s\n" name stage (prom_float v)
      | Obs.Snapshot.Histogram h ->
          declare name "histogram";
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              let le =
                if i < Array.length h.Obs.Snapshot.bounds then
                  prom_float h.Obs.Snapshot.bounds.(i)
                else "+Inf"
              in
              add "%s_bucket{stage=\"%s\",le=\"%s\"} %d\n" name stage le
                !cumulative)
            h.Obs.Snapshot.counts;
          add "%s_sum{stage=\"%s\"} %s\n" name stage
            (prom_float h.Obs.Snapshot.sum);
          add "%s_count{stage=\"%s\"} %d\n" name stage h.Obs.Snapshot.count;
          (* bucket-estimated quantiles, precomputed for dashboards
             that do not run histogram_quantile *)
          List.iter
            (fun (q, label) ->
              let gauge = Printf.sprintf "%s_%s" name label in
              declare gauge "gauge";
              let v =
                if h.Obs.Snapshot.count = 0 then 0.
                else Obs.Snapshot.quantile h q
              in
              add "%s{stage=\"%s\"} %s\n" gauge stage (prom_float v))
            [ (0.5, "p50"); (0.95, "p95"); (0.99, "p99") ])
    snapshot.Obs.Snapshot.entries;
  Buffer.contents buf
