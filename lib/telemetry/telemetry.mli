(** Live telemetry endpoint: a minimal HTTP/1.1 server on stdlib
    [Unix] + [Thread], serving read-only observability routes
    ([/metrics], [/health], [/slo], [/traces]) while a simulation
    runs.  One accept thread, connections served serially, every
    response closed — scrapes are rare and tiny, so an unscraped
    endpoint costs the simulation nothing. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** Prometheus text exposition content type. *)

val json : ?status:int -> string -> response
val jsonl : ?status:int -> string -> response

type t

val start :
  ?host:string ->
  ?admit:(unit -> bool) ->
  ?retry_after:float ->
  port:int ->
  routes:(string * (unit -> response)) list ->
  unit ->
  t
(** [start ~port ~routes ()] binds [host] (default [127.0.0.1]) and
    serves [routes] (path → handler; handlers run on the accept
    thread and must be thread-safe) from a background thread.
    [~port:0] picks an ephemeral port — read it back with {!port}.
    [admit] is the shared admission gate ({!Xy_serve.Listener}): a
    scrape arriving while it returns [false] is answered with [503]
    plus a [Retry-After: <retry_after>] header (default 1 s) and
    closed, and counted in the listener's shed counter.
    Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Close the listening socket and join the accept thread. *)

val prometheus_of_snapshot : Xy_obs.Obs.Snapshot.t -> string
(** Render a metrics snapshot in the Prometheus text exposition
    format.  Metric names are [xyleme_<name>] with a [stage] label;
    counters gain a [_total] suffix; histograms emit cumulative
    [_bucket{le=...}] series plus [_sum]/[_count] and bucket-estimated
    [_p50]/[_p95]/[_p99] gauges. *)
