(** Per-document pipeline tracing.

    The aggregate metrics of [xy_obs] answer "how fast is each stage
    on average?"; this library answers "where did *this* document
    spend its time?".  A sampled document receives a trace context at
    fetch time; the context propagates with the document through
    crawler → loader → alerters → MQP → trigger engine → reporter,
    and rides messages across {!Xy_system.Bus} queues and the
    distributed runner, so cross-domain queue wait is attributed to a
    [bus.wait] span of the same trace.

    Sampling is deterministic (1-in-N via {!Xy_util.Prng}), so a
    simulation replayed from the same seed samples the same documents.
    An unsampled document carries no context ([None]) and every
    tracing entry point is a no-op — the disabled-path cost is one
    option match per stage.

    Spans record their stage, start and duration on both clocks (the
    virtual simulation {!Xy_util.Clock} and the injected wall timer),
    and key attributes (url, event counts, report size).  Completed
    traces are retained in a bounded ring buffer and exported as JSONL
    or as an XML [<trace>] document via the existing printer.

    The library is safe across OCaml domains: span completion and
    trace retirement take a tracer-internal lock, which only sampled
    documents ever touch. *)

(** {2 Wall clock}

    Like {!Xy_obs.Obs.set_timer}: the tracer is stdlib-only, callers
    that link [unix] should install [Unix.gettimeofday].  Defaults to
    [Sys.time]. *)

val set_timer : (unit -> float) -> unit

val now : unit -> float

(** {2 Spans and traces} *)

type span = {
  sp_stage : string;  (** pipeline stage, e.g. ["mqp"] *)
  sp_name : string;  (** operation, e.g. ["match"] *)
  sp_start_wall : float;
  sp_dur_wall : float;
  sp_start_virtual : float;  (** simulation time at span start *)
  sp_dur_virtual : float;
  sp_attrs : (string * string) list;
}

type trace = {
  tr_id : int;
  tr_root : string;  (** the traced document's URL *)
  tr_start_wall : float;
  tr_dur_wall : float;  (** start of first span to end of last *)
  tr_start_virtual : float;
  tr_spans : span list;  (** ascending by wall start time *)
}

(** {2 Tracer} *)

type t

(** [create ()] — [sample_every] is the 1-in-N sampling rate ([0],
    the default, disables tracing entirely; [1] traces every
    document); [capacity] bounds the completed-trace ring buffer
    (default 256, oldest evicted); [seed] feeds the sampling PRNG;
    [virtual_clock] supplies simulation time for span timestamps
    (default: constantly [0.]). *)
val create :
  ?capacity:int ->
  ?sample_every:int ->
  ?seed:int ->
  ?virtual_clock:(unit -> float) ->
  unit ->
  t

val sample_every : t -> int

(** [set_sampling t ~every] changes the sampling rate of a live
    tracer (e.g. a CLI flag applied to a system-owned tracer). *)
val set_sampling : t -> every:int -> unit

(** [set_virtual_clock t f] rebinds the simulation clock (the system
    facade binds a user-supplied tracer to its own clock). *)
val set_virtual_clock : t -> (unit -> float) -> unit

(** {2 Trace contexts}

    A context is an immutable handle naming one sampled document's
    trace; it is designed to ride inside pipeline messages (alerts,
    bus envelopes) across domains.  Pipeline stages receive a
    [ctx option] and pay nothing when it is [None]. *)

type ctx

(** [start t ~root] makes the sampling decision for one document:
    [Some ctx] for the 1-in-N sampled ones, [None] otherwise (and
    always [None] when sampling is disabled). *)
val start : t -> root:string -> ctx option

(** [start_always t ~root] bypasses sampling (tests, forced traces). *)
val start_always : t -> root:string -> ctx

(** [finish ctx] retires the trace into the completed ring.  Spans
    ended after [finish] are dropped; a second [finish] is a no-op. *)
val finish : ctx -> unit

val trace_id : ctx -> int

(** {2 Recording spans} *)

type span_handle

(** [begin_span ctx ~stage ~name] opens a span at the current wall and
    virtual instants. *)
val begin_span : ctx -> stage:string -> name:string -> span_handle

(** [end_span ?attrs handle] closes the span and files it under its
    trace. *)
val end_span : ?attrs:(string * string) list -> span_handle -> unit

(** [wrap ctx ~stage ~name ?attrs f] runs [f] inside a span when [ctx]
    is [Some] (closing it on exception too); just runs [f] when
    [None]. *)
val wrap :
  ctx option ->
  stage:string ->
  name:string ->
  ?attrs:(string * string) list ->
  (unit -> 'a) ->
  'a

(** [record ctx ~stage ~name ~start_wall ~dur_wall] files a span
    retroactively — the producing side only kept timestamps (e.g. a
    bus enqueue instant measured on another domain).  Virtual start is
    the tracer's current simulation time, virtual duration [0.]. *)
val record :
  ctx ->
  stage:string ->
  name:string ->
  ?attrs:(string * string) list ->
  start_wall:float ->
  dur_wall:float ->
  unit ->
  unit

(** {2 Completed traces} *)

(** [traces t] — completed traces, most recent first. *)
val traces : t -> trace list

(** [slowest t ~k] — the [k] longest completed traces, slowest
    first. *)
val slowest : t -> k:int -> trace list

(** [started t] counts sampling decisions that returned a context;
    [completed t] counts retired traces (including ones evicted from
    the ring). *)
val started : t -> int

val completed : t -> int
val clear : t -> unit

(** {2 Analysis} *)

(** [stage_breakdown trace] sums wall time per stage, largest first —
    the critical-path view of one document ([(stage, seconds,
    fraction-of-total)]). *)
val stage_breakdown : trace -> (string * float * float) list

type stage_stat = {
  st_stage : string;
  st_spans : int;
  st_total_wall : float;
  st_max_wall : float;
}

(** [summary t] aggregates {!stage_breakdown} over every trace in the
    ring, largest total first. *)
val summary : t -> stage_stat list

(** {2 Export} *)

(** [trace_to_jsonl trace] is one JSON object on one line. *)
val trace_to_jsonl : trace -> string

(** [to_jsonl_string t] is one line per completed trace, oldest
    first. *)
val to_jsonl_string : t -> string

(** [trace_to_xml trace] is a [<trace>] element (spans as [<span>]
    children with [<attr>] grandchildren), printable with
    {!Xy_xml.Printer}. *)
val trace_to_xml : trace -> Xy_xml.Types.element

(** [to_xml_string t] is a [<traces>] document of every completed
    trace, oldest first. *)
val to_xml_string : t -> string

(** [pp_trace] renders one trace for the terminal: header, span table
    and per-stage breakdown. *)
val pp_trace : Format.formatter -> trace -> unit
