(* Span collection is deliberately dumb: a sampled document's spans
   accumulate in a per-trace pending list under one tracer mutex, and
   are sorted once at [finish].  Only sampled documents (1-in-N) ever
   take the lock, so the steady-state cost of tracing is the [ctx
   option] match in each stage. *)

let now_fn : (unit -> float) ref = ref Sys.time
let set_timer f = now_fn := f
let now () = !now_fn ()

type span = {
  sp_stage : string;
  sp_name : string;
  sp_start_wall : float;
  sp_dur_wall : float;
  sp_start_virtual : float;
  sp_dur_virtual : float;
  sp_attrs : (string * string) list;
}

type trace = {
  tr_id : int;
  tr_root : string;
  tr_start_wall : float;
  tr_dur_wall : float;
  tr_start_virtual : float;
  tr_spans : span list;
}

type t = {
  lock : Mutex.t;
  prng : Xy_util.Prng.t;
  mutable every : int;
  mutable virtual_clock : unit -> float;
  pending : (int, span list ref) Hashtbl.t;
  ring : trace option array;  (** completed traces, oldest overwritten *)
  mutable ring_pos : int;
  mutable next_id : int;
  mutable started : int;
  mutable completed : int;
}

type ctx = {
  c_tracer : t;
  c_id : int;
  c_root : string;
  c_start_wall : float;
  c_start_virtual : float;
}

let create ?(capacity = 256) ?(sample_every = 0) ?(seed = 1)
    ?(virtual_clock = fun () -> 0.) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  if sample_every < 0 then invalid_arg "Trace.create: sample_every < 0";
  {
    lock = Mutex.create ();
    prng = Xy_util.Prng.create ~seed;
    every = sample_every;
    virtual_clock;
    pending = Hashtbl.create 16;
    ring = Array.make capacity None;
    ring_pos = 0;
    next_id = 0;
    started = 0;
    completed = 0;
  }

let sample_every t = t.every

let set_sampling t ~every =
  if every < 0 then invalid_arg "Trace.set_sampling: every < 0";
  t.every <- every

let set_virtual_clock t f = t.virtual_clock <- f

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | result ->
      Mutex.unlock t.lock;
      result
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let start_always t ~root =
  locked t @@ fun () ->
  let id = t.next_id in
  t.next_id <- id + 1;
  t.started <- t.started + 1;
  Hashtbl.replace t.pending id (ref []);
  {
    c_tracer = t;
    c_id = id;
    c_root = root;
    c_start_wall = now ();
    c_start_virtual = t.virtual_clock ();
  }

let start t ~root =
  if t.every <= 0 then None
  else
    let sampled =
      t.every = 1 || locked t (fun () -> Xy_util.Prng.int t.prng t.every) = 0
    in
    if sampled then Some (start_always t ~root) else None

let trace_id ctx = ctx.c_id

type span_handle = {
  h_ctx : ctx;
  h_stage : string;
  h_name : string;
  h_start_wall : float;
  h_start_virtual : float;
}

let begin_span ctx ~stage ~name =
  {
    h_ctx = ctx;
    h_stage = stage;
    h_name = name;
    h_start_wall = now ();
    h_start_virtual = ctx.c_tracer.virtual_clock ();
  }

let file ctx span =
  let t = ctx.c_tracer in
  locked t @@ fun () ->
  (* Spans arriving after [finish] (a late domain, a report fired from
     a later tick) have no pending list and are dropped. *)
  match Hashtbl.find_opt t.pending ctx.c_id with
  | Some spans -> spans := span :: !spans
  | None -> ()

let end_span ?(attrs = []) handle =
  let t = handle.h_ctx.c_tracer in
  file handle.h_ctx
    {
      sp_stage = handle.h_stage;
      sp_name = handle.h_name;
      sp_start_wall = handle.h_start_wall;
      (* Clamped: a non-monotonic timer must not produce a negative
         span that would drag [tr_dur_wall] and breakdowns below the
         truth. *)
      sp_dur_wall = Float.max 0. (now () -. handle.h_start_wall);
      sp_start_virtual = handle.h_start_virtual;
      sp_dur_virtual =
        Float.max 0. (t.virtual_clock () -. handle.h_start_virtual);
      sp_attrs = attrs;
    }

let wrap ctx ~stage ~name ?attrs f =
  match ctx with
  | None -> f ()
  | Some ctx -> (
      let handle = begin_span ctx ~stage ~name in
      match f () with
      | result ->
          end_span ?attrs handle;
          result
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          end_span ?attrs handle;
          Printexc.raise_with_backtrace e bt)

let record ctx ~stage ~name ?(attrs = []) ~start_wall ~dur_wall () =
  file ctx
    {
      sp_stage = stage;
      sp_name = name;
      sp_start_wall = start_wall;
      sp_dur_wall = dur_wall;
      sp_start_virtual = ctx.c_tracer.virtual_clock ();
      sp_dur_virtual = 0.;
      sp_attrs = attrs;
    }

let finish ctx =
  let t = ctx.c_tracer in
  locked t @@ fun () ->
  match Hashtbl.find_opt t.pending ctx.c_id with
  | None -> ()
  | Some spans ->
      Hashtbl.remove t.pending ctx.c_id;
      (* Stable over insertion order, so same-instant spans (timer
         granularity) keep their causal order. *)
      let spans =
        List.stable_sort
          (fun a b -> compare a.sp_start_wall b.sp_start_wall)
          (List.rev !spans)
      in
      let last_end =
        List.fold_left
          (fun acc s -> Float.max acc (s.sp_start_wall +. s.sp_dur_wall))
          ctx.c_start_wall spans
      in
      t.ring.(t.ring_pos) <-
        Some
          {
            tr_id = ctx.c_id;
            tr_root = ctx.c_root;
            tr_start_wall = ctx.c_start_wall;
            tr_dur_wall = last_end -. ctx.c_start_wall;
            tr_start_virtual = ctx.c_start_virtual;
            tr_spans = spans;
          };
      t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
      t.completed <- t.completed + 1

let started t = t.started
let completed t = t.completed

(* Oldest first: walk the ring forward from the write position. *)
let traces_oldest_first t =
  locked t @@ fun () ->
  let n = Array.length t.ring in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.ring_pos + i) mod n) with
    | Some trace -> out := trace :: !out
    | None -> ()
  done;
  !out

let traces t = List.rev (traces_oldest_first t)

let slowest t ~k =
  let by_duration a b = compare b.tr_dur_wall a.tr_dur_wall in
  List.filteri (fun i _ -> i < k) (List.sort by_duration (traces t))

let clear t =
  locked t @@ fun () ->
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_pos <- 0

(* ------------------------------------------------------------------ *)
(* Analysis *)

let stage_breakdown trace =
  let totals : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt totals s.sp_stage with
      | Some acc -> acc := !acc +. s.sp_dur_wall
      | None -> Hashtbl.replace totals s.sp_stage (ref s.sp_dur_wall))
    trace.tr_spans;
  let grand =
    Hashtbl.fold (fun _ acc total -> !acc +. total) totals 0.
  in
  Hashtbl.fold (fun stage acc rows -> (stage, !acc) :: rows) totals []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map (fun (stage, total) ->
         (stage, total, if grand > 0. then total /. grand else 0.))

type stage_stat = {
  st_stage : string;
  st_spans : int;
  st_total_wall : float;
  st_max_wall : float;
}

let summary t =
  let stats : (string, stage_stat ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun trace ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt stats s.sp_stage with
          | Some stat ->
              stat :=
                {
                  !stat with
                  st_spans = !stat.st_spans + 1;
                  st_total_wall = !stat.st_total_wall +. s.sp_dur_wall;
                  st_max_wall = Float.max !stat.st_max_wall s.sp_dur_wall;
                }
          | None ->
              Hashtbl.replace stats s.sp_stage
                (ref
                   {
                     st_stage = s.sp_stage;
                     st_spans = 1;
                     st_total_wall = s.sp_dur_wall;
                     st_max_wall = s.sp_dur_wall;
                   }))
        trace.tr_spans)
    (traces t);
  Hashtbl.fold (fun _ stat acc -> !stat :: acc) stats []
  |> List.sort (fun a b -> compare b.st_total_wall a.st_total_wall)

(* ------------------------------------------------------------------ *)
(* Export *)

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_float v = Printf.sprintf "%.9g" v

let span_to_json s =
  let attrs =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         s.sp_attrs)
  in
  Printf.sprintf
    "{\"stage\":\"%s\",\"name\":\"%s\",\"start_wall\":%s,\"dur_wall\":%s,\"start_virtual\":%s,\"dur_virtual\":%s,\"attrs\":{%s}}"
    (json_escape s.sp_stage) (json_escape s.sp_name)
    (json_float s.sp_start_wall) (json_float s.sp_dur_wall)
    (json_float s.sp_start_virtual) (json_float s.sp_dur_virtual) attrs

let trace_to_jsonl trace =
  Printf.sprintf
    "{\"id\":%d,\"root\":\"%s\",\"start_wall\":%s,\"dur_wall\":%s,\"start_virtual\":%s,\"spans\":[%s]}"
    trace.tr_id (json_escape trace.tr_root)
    (json_float trace.tr_start_wall)
    (json_float trace.tr_dur_wall)
    (json_float trace.tr_start_virtual)
    (String.concat "," (List.map span_to_json trace.tr_spans))

let to_jsonl_string t =
  String.concat ""
    (List.map (fun trace -> trace_to_jsonl trace ^ "\n") (traces_oldest_first t))

module T = Xy_xml.Types

let float_attr v = Printf.sprintf "%.9g" v

let span_to_xml s =
  T.element "span"
    ~attrs:
      [
        ("stage", s.sp_stage);
        ("name", s.sp_name);
        ("start_wall", float_attr s.sp_start_wall);
        ("dur_wall", float_attr s.sp_dur_wall);
        ("start_virtual", float_attr s.sp_start_virtual);
        ("dur_virtual", float_attr s.sp_dur_virtual);
      ]
    (List.map
       (fun (k, v) -> T.el "attr" ~attrs:[ ("name", k); ("value", v) ] [])
       s.sp_attrs)

let trace_to_xml trace =
  T.element "trace"
    ~attrs:
      [
        ("id", string_of_int trace.tr_id);
        ("root", trace.tr_root);
        ("start_wall", float_attr trace.tr_start_wall);
        ("dur_wall", float_attr trace.tr_dur_wall);
        ("start_virtual", float_attr trace.tr_start_virtual);
      ]
    (List.map (fun s -> T.Element (span_to_xml s)) trace.tr_spans)

let to_xml_string t =
  let root =
    T.element "traces"
      (List.map (fun trace -> T.Element (trace_to_xml trace)) (traces_oldest_first t))
  in
  Xy_xml.Printer.element_to_string ~indent:2 root ^ "\n"

(* ------------------------------------------------------------------ *)
(* Pretty rendering *)

let pp_ms ppf seconds = Format.fprintf ppf "%.3f ms" (seconds *. 1e3)

let pp_trace ppf trace =
  Format.fprintf ppf "@[<v>trace #%d %s@,  wall %a, virtual start %a, %d span(s)@,"
    trace.tr_id trace.tr_root pp_ms trace.tr_dur_wall Xy_util.Clock.pp
    trace.tr_start_virtual
    (List.length trace.tr_spans);
  List.iter
    (fun s ->
      Format.fprintf ppf "    %-11s %-8s %10.3f ms" s.sp_stage s.sp_name
        (s.sp_dur_wall *. 1e3);
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) s.sp_attrs;
      Format.pp_print_cut ppf ())
    trace.tr_spans;
  (match stage_breakdown trace with
  | [] -> ()
  | breakdown ->
      Format.fprintf ppf "  breakdown: %s@,"
        (String.concat " | "
           (List.map
              (fun (stage, total, share) ->
                Printf.sprintf "%s %.1f%% (%.3f ms)" stage (share *. 100.)
                  (total *. 1e3))
              breakdown)));
  Format.pp_close_box ppf ()
