type operand =
  | O_path of string option * Xy_xml.Path.t
  | O_const of string

type binding = { var : string; base : string option; path : Xy_xml.Path.t }

type condition =
  | C_contains of operand * string
  | C_eq of operand * operand
  | C_neq of operand * operand

type select = S_operand of operand | S_construct of construct

and construct =
  | K_element of string * (string * operand) list * construct list
  | K_text of string
  | K_operand of operand

type t = {
  name : string option;
  distinct : bool;
  select : select;
  from : binding list;
  where : condition list;
}

let pp_operand ppf = function
  | O_path (None, path) -> Xy_xml.Path.pp ppf path
  | O_path (Some var, []) -> Format.pp_print_string ppf var
  | O_path (Some var, path) ->
      Format.fprintf ppf "%s/%a" var Xy_xml.Path.pp path
  | O_const s -> Format.fprintf ppf "%S" s

let pp_condition ppf = function
  | C_contains (op, word) -> Format.fprintf ppf "%a contains %S" pp_operand op word
  | C_eq (a, b) -> Format.fprintf ppf "%a = %a" pp_operand a pp_operand b
  | C_neq (a, b) -> Format.fprintf ppf "%a != %a" pp_operand a pp_operand b

let rec pp_construct ppf = function
  | K_element (tag, attrs, children) ->
      Format.fprintf ppf "<%s" tag;
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_operand v) attrs;
      if children = [] then Format.fprintf ppf "/>"
      else begin
        Format.fprintf ppf ">";
        List.iter (pp_construct ppf) children;
        Format.fprintf ppf "</%s>" tag
      end
  | K_text s -> Format.pp_print_string ppf s
  | K_operand op -> Format.fprintf ppf "{%a}" pp_operand op

let pp_select ppf = function
  | S_operand op -> pp_operand ppf op
  | S_construct k -> pp_construct ppf k

let pp ppf q =
  Format.fprintf ppf "@[<v>select %s%a@,"
    (if q.distinct then "distinct " else "")
    pp_select q.select;
  if q.from <> [] then begin
    Format.fprintf ppf "from ";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf b ->
        match b.base with
        | None -> Format.fprintf ppf "%a %s" Xy_xml.Path.pp b.path b.var
        | Some base -> Format.fprintf ppf "%s/%a %s" base Xy_xml.Path.pp b.path b.var)
      ppf q.from;
    Format.fprintf ppf "@,"
  end;
  if q.where <> [] then begin
    Format.fprintf ppf "where ";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@, and ")
      pp_condition ppf q.where
  end;
  Format.fprintf ppf "@]"
