(** Deltas of continuous-query results.

    "The use of the keyword [delta] specifies that we are interested
    by changes to the result and not by the result per se" (§5.2).
    The tracker versions the wrapped query result with XIDs; the first
    evaluation returns the full answer, later ones only the delta
    document ([<Name-delta>] with [<inserted>]/[<deleted>]/
    [<updated>] children), or nothing if the answer is unchanged. *)

type t

val create : name:string -> t

type outcome =
  | First of Xy_xml.Types.element  (** the initial full answer *)
  | Changed of Xy_xml.Types.element  (** the [<Name-delta>] document *)
  | Unchanged

(** [update t result] feeds the latest evaluation (the wrapped
    [<Name>...</Name>] element) and classifies the change. *)
val update : t -> Xy_xml.Types.element -> outcome

(** [current t] is the latest full answer, if any evaluation
    happened. *)
val current : t -> Xy_xml.Types.element option
