exception Error of { line : int; message : string }

let fail lexer message = raise (Error { line = Lexer.line lexer; message })

let expect lexer token =
  let got = Lexer.next lexer in
  if got <> token then
    fail lexer
      (Printf.sprintf "expected %s, found %s" (Lexer.token_to_string token)
         (Lexer.token_to_string got))

let expect_ident lexer =
  match Lexer.next lexer with
  | Lexer.Ident s -> s
  | other ->
      fail lexer
        (Printf.sprintf "expected an identifier, found %s"
           (Lexer.token_to_string other))

(* A path suffix: ('/' | '//') (ident | '*') ... *)
let rec parse_path_steps lexer acc =
  match Lexer.peek lexer with
  | Lexer.Slash | Lexer.Double_slash ->
      let axis =
        match Lexer.next lexer with
        | Lexer.Slash -> Xy_xml.Path.Child
        | Lexer.Double_slash -> Xy_xml.Path.Descendant
        | _ -> assert false
      in
      let tag =
        match Lexer.next lexer with
        | Lexer.Ident s -> Some s
        | Lexer.Star -> None
        | other ->
            fail lexer
              (Printf.sprintf "expected a step name, found %s"
                 (Lexer.token_to_string other))
      in
      parse_path_steps lexer ({ Xy_xml.Path.axis; tag } :: acc)
  | _ -> List.rev acc

(* A path reference starting with an identifier already consumed.
   Resolution: "self" roots at the context; a bound variable roots at
   that variable; anything else is the first step of a context
   path. *)
let path_ref_of lexer ~bound first =
  let steps = parse_path_steps lexer [] in
  if first = "self" then (None, steps)
  else if List.mem first bound then (Some first, steps)
  else (None, { Xy_xml.Path.axis = Xy_xml.Path.Child; tag = Some first } :: steps)

(* Special case: a leading '//' means a descendant path from the
   context. *)
let parse_operand lexer ~bound =
  match Lexer.next lexer with
  | Lexer.Quoted s -> Ast.O_const s
  | Lexer.Number n -> Ast.O_const (string_of_int n)
  | Lexer.Double_slash ->
      let tag =
        match Lexer.next lexer with
        | Lexer.Ident s -> Some s
        | Lexer.Star -> None
        | other ->
            fail lexer
              (Printf.sprintf "expected a step name, found %s"
                 (Lexer.token_to_string other))
      in
      let steps =
        parse_path_steps lexer [ { Xy_xml.Path.axis = Xy_xml.Path.Descendant; tag } ]
      in
      Ast.O_path (None, steps)
  | Lexer.Ident first ->
      let base, steps = path_ref_of lexer ~bound first in
      Ast.O_path (base, steps)
  | other ->
      fail lexer
        (Printf.sprintf "expected an operand, found %s"
           (Lexer.token_to_string other))

let rec parse_construct lexer ~bound =
  (* '<' already consumed *)
  let tag = expect_ident lexer in
  let rec attrs acc =
    match Lexer.peek lexer with
    | Lexer.Ident name ->
        ignore (Lexer.next lexer);
        expect lexer Lexer.Eq;
        let value = parse_operand lexer ~bound in
        attrs ((name, value) :: acc)
    | _ -> List.rev acc
  in
  let attrs = attrs [] in
  match Lexer.next lexer with
  | Lexer.Slash_gt -> Ast.K_element (tag, attrs, [])
  | Lexer.Gt ->
      let rec children acc =
        match Lexer.peek lexer with
        | Lexer.Lt_slash ->
            ignore (Lexer.next lexer);
            let closing = expect_ident lexer in
            if closing <> tag then
              fail lexer
                (Printf.sprintf "construct <%s> closed by </%s>" tag closing);
            expect lexer Lexer.Gt;
            List.rev acc
        | Lexer.Lt ->
            ignore (Lexer.next lexer);
            children (parse_construct lexer ~bound :: acc)
        | Lexer.Quoted s ->
            ignore (Lexer.next lexer);
            children (Ast.K_text s :: acc)
        | Lexer.Eof -> fail lexer (Printf.sprintf "unterminated construct <%s>" tag)
        | _ -> children (Ast.K_operand (parse_operand lexer ~bound) :: acc)
      in
      Ast.K_element (tag, attrs, children [])
  | other ->
      fail lexer
        (Printf.sprintf "expected '>' or '/>', found %s"
           (Lexer.token_to_string other))

let parse_select lexer ~bound =
  match Lexer.peek lexer with
  | Lexer.Lt ->
      ignore (Lexer.next lexer);
      Ast.S_construct (parse_construct lexer ~bound)
  | _ -> Ast.S_operand (parse_operand lexer ~bound)

let parse_from lexer ~bound =
  let rec bindings bound acc =
    let first = expect_ident lexer in
    let base, steps = path_ref_of lexer ~bound first in
    let var = expect_ident lexer in
    let binding = { Ast.var; base; path = steps } in
    let bound = var :: bound in
    match Lexer.peek lexer with
    | Lexer.Comma ->
        ignore (Lexer.next lexer);
        bindings bound (binding :: acc)
    | _ -> (List.rev (binding :: acc), bound)
  in
  bindings bound []

let parse_condition lexer ~bound =
  let left = parse_operand lexer ~bound in
  match Lexer.next lexer with
  | Lexer.Ident "contains" -> (
      match Lexer.next lexer with
      | Lexer.Quoted word -> Ast.C_contains (left, word)
      | Lexer.Ident word -> Ast.C_contains (left, word)
      | other ->
          fail lexer
            (Printf.sprintf "expected a word after 'contains', found %s"
               (Lexer.token_to_string other)))
  | Lexer.Eq -> Ast.C_eq (left, parse_operand lexer ~bound)
  | Lexer.Neq -> Ast.C_neq (left, parse_operand lexer ~bound)
  | other ->
      fail lexer
        (Printf.sprintf "expected a comparison, found %s"
           (Lexer.token_to_string other))

(* The select clause may reference variables bound *later* by the from
   clause ("select X from self//Member X"), so an unbound head segment
   is re-resolved once the from clause is known. *)
let resolve_operand ~bound = function
  | Ast.O_path (None, { Xy_xml.Path.axis = Xy_xml.Path.Child; tag = Some head } :: rest)
    when List.mem head bound ->
      Ast.O_path (Some head, rest)
  | other -> other

let rec resolve_construct ~bound = function
  | Ast.K_element (tag, attrs, children) ->
      Ast.K_element
        ( tag,
          List.map (fun (k, v) -> (k, resolve_operand ~bound v)) attrs,
          List.map (resolve_construct ~bound) children )
  | Ast.K_text _ as t -> t
  | Ast.K_operand op -> Ast.K_operand (resolve_operand ~bound op)

let resolve_select ~bound = function
  | Ast.S_operand op -> Ast.S_operand (resolve_operand ~bound op)
  | Ast.S_construct k -> Ast.S_construct (resolve_construct ~bound k)

let parse_body lexer ~bound =
  let name = None in
  expect lexer (Lexer.Ident "select");
  let distinct =
    match Lexer.peek lexer with
    | Lexer.Ident "distinct" ->
        ignore (Lexer.next lexer);
        true
    | _ -> false
  in
  let select = parse_select lexer ~bound in
  let from, bound =
    match Lexer.peek lexer with
    | Lexer.Ident "from" ->
        ignore (Lexer.next lexer);
        parse_from lexer ~bound
    | _ -> ([], bound)
  in
  let select = resolve_select ~bound select in
  let where =
    match Lexer.peek lexer with
    | Lexer.Ident "where" ->
        ignore (Lexer.next lexer);
        let rec conditions acc =
          let c = parse_condition lexer ~bound in
          match Lexer.peek lexer with
          | Lexer.Ident "and" ->
              ignore (Lexer.next lexer);
              conditions (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        conditions []
    | _ -> []
  in
  { Ast.name; distinct; select; from; where }

let parse s =
  let lexer = Lexer.create s in
  try
    let q = parse_body lexer ~bound:[] in
    (match Lexer.peek lexer with
    | Lexer.Eof -> ()
    | other ->
        fail lexer
          (Printf.sprintf "trailing input: %s" (Lexer.token_to_string other)));
    q
  with Lexer.Error { line; message } -> raise (Error { line; message })
