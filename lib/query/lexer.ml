type token =
  | Ident of string
  | Quoted of string
  | Number of int
  | Lt
  | Gt
  | Lt_slash
  | Slash_gt
  | Slash
  | Double_slash
  | Star
  | Comma
  | Dot
  | Eq
  | Neq
  | Le
  | Ge
  | Lparen
  | Rparen
  | Backslash2
  | Eof

exception Error of { line : int; message : string }

type t = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable lookahead : token option;
}

let create input = { input; pos = 0; line = 1; lookahead = None }
let line t = t.line

let error t message = raise (Error { line = t.line; message })

let at_end t = t.pos >= String.length t.input
let cur t = if at_end t then '\000' else t.input.[t.pos]

let cur2 t =
  if t.pos + 1 >= String.length t.input then '\000' else t.input.[t.pos + 1]

let advance t =
  if cur t = '\n' then t.line <- t.line + 1;
  t.pos <- t.pos + 1

let rec skip_blanks t =
  if at_end t then ()
  else
    match cur t with
    | ' ' | '\t' | '\n' | '\r' ->
        advance t;
        skip_blanks t
    | '%' ->
        (* line comment, as in the paper's subscription examples *)
        while (not (at_end t)) && cur t <> '\n' do
          advance t
        done;
        skip_blanks t
    | _ -> ()

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = ':'

let read_ident t =
  let start = t.pos in
  while (not (at_end t)) && is_ident_char (cur t) do
    advance t
  done;
  String.sub t.input start (t.pos - start)

let read_number t =
  let start = t.pos in
  while (not (at_end t)) && cur t >= '0' && cur t <= '9' do
    advance t
  done;
  int_of_string (String.sub t.input start (t.pos - start))

(* Quoted strings: "...", '...', and the paper's typographic
   ``...''. *)
let read_quoted t =
  let quote = cur t in
  if quote = '`' && cur2 t = '`' then begin
    advance t;
    advance t;
    let buf = Buffer.create 16 in
    let rec go () =
      if at_end t then error t "unterminated ``...'' string"
      else if cur t = '\'' && cur2 t = '\'' then begin
        advance t;
        advance t
      end
      else begin
        Buffer.add_char buf (cur t);
        advance t;
        go ()
      end
    in
    go ();
    Buffer.contents buf
  end
  else begin
    advance t;
    let buf = Buffer.create 16 in
    let rec go () =
      if at_end t then error t "unterminated string"
      else if cur t = quote then advance t
      else begin
        Buffer.add_char buf (cur t);
        advance t;
        go ()
      end
    in
    go ();
    Buffer.contents buf
  end

let lex t =
  skip_blanks t;
  if at_end t then Eof
  else
    match cur t with
    | '"' | '\'' -> Quoted (read_quoted t)
    | '`' when cur2 t = '`' -> Quoted (read_quoted t)
    | c when is_ident_start c -> Ident (read_ident t)
    | c when c >= '0' && c <= '9' -> Number (read_number t)
    | '<' ->
        advance t;
        if cur t = '/' then begin
          advance t;
          Lt_slash
        end
        else if cur t = '=' then begin
          advance t;
          Le
        end
        else Lt
    | '>' ->
        advance t;
        if cur t = '=' then begin
          advance t;
          Ge
        end
        else Gt
    | '/' ->
        advance t;
        if cur t = '/' then begin
          advance t;
          Double_slash
        end
        else if cur t = '>' then begin
          advance t;
          Slash_gt
        end
        else Slash
    | '*' ->
        advance t;
        Star
    | ',' ->
        advance t;
        Comma
    | '(' ->
        advance t;
        Lparen
    | ')' ->
        advance t;
        Rparen
    | '.' ->
        advance t;
        Dot
    | '=' ->
        advance t;
        Eq
    | '!' when cur2 t = '=' ->
        advance t;
        advance t;
        Neq
    | '\\' when cur2 t = '\\' ->
        advance t;
        advance t;
        Backslash2
    | c -> error t (Printf.sprintf "unexpected character %C" c)

let next t =
  match t.lookahead with
  | Some token ->
      t.lookahead <- None;
      token
  | None -> lex t

let peek t =
  match t.lookahead with
  | Some token -> token
  | None ->
      let token = lex t in
      t.lookahead <- Some token;
      token

let token_to_string = function
  | Ident s -> s
  | Quoted s -> Printf.sprintf "%S" s
  | Number n -> string_of_int n
  | Lt -> "<"
  | Gt -> ">"
  | Lt_slash -> "</"
  | Slash_gt -> "/>"
  | Slash -> "/"
  | Double_slash -> "//"
  | Star -> "*"
  | Comma -> ","
  | Dot -> "."
  | Eq -> "="
  | Neq -> "!="
  | Le -> "<="
  | Ge -> ">="
  | Lparen -> "("
  | Rparen -> ")"
  | Backslash2 -> "\\\\"
  | Eof -> "<eof>"
