(** Token stream shared by the query parser and the subscription
    language parser ([xy_sublang]).

    Keywords are not distinguished from identifiers here — both
    parsers decide keyword-ness in context.  [%] starts a line
    comment, as in the paper's examples. *)

type token =
  | Ident of string
  | Quoted of string  (** "..." or '...' or the paper's ``...'' style *)
  | Number of int
  | Lt  (** [<] *)
  | Gt  (** [>] *)
  | Lt_slash  (** [</] *)
  | Slash_gt  (** [/>] *)
  | Slash
  | Double_slash
  | Star
  | Comma
  | Dot
  | Eq
  | Neq
  | Le
  | Ge
  | Lparen
  | Rparen
  | Backslash2  (** [\\], the element-condition separator *)
  | Eof

exception Error of { line : int; message : string }

type t

val create : string -> t

(** [next t] consumes and returns the next token. *)
val next : t -> token

(** [peek t] returns the next token without consuming it. *)
val peek : t -> token

(** [line t] is the current 1-based line. *)
val line : t -> int

val token_to_string : token -> string
