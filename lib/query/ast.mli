(** Abstract syntax of the Xyleme-style query language.

    The paper predates standard XML query languages ("our own XML
    query language in the absence of a standard for the moment") and
    uses select/from/where queries over tree paths, e.g.:

    {v
    select p/title
    from   culture/museum m, m/painting p
    where  m/address contains "Amsterdam"
    v}

    Queries are evaluated against a context element — an abstract
    domain view, a warehouse document, or a notification stream. *)

(** An operand: either a path (rooted at the context or at a bound
    variable) or a string constant. *)
type operand =
  | O_path of string option * Xy_xml.Path.t
      (** [Some v] roots the path at variable [v]; [None] at the
          query context *)
  | O_const of string

(** One variable binding of the [from] clause: [path var], where the
    path may itself start from a previously bound variable. *)
type binding = { var : string; base : string option; path : Xy_xml.Path.t }

type condition =
  | C_contains of operand * string  (** word containment in text *)
  | C_eq of operand * operand
  | C_neq of operand * operand

(** The [select] clause: either project an operand, or construct an
    XML template with embedded operands. *)
type select =
  | S_operand of operand
  | S_construct of construct

and construct =
  | K_element of string * (string * operand) list * construct list
  | K_text of string
  | K_operand of operand

type t = {
  name : string option;  (** e.g. [continuous delta AmsterdamPaintings] *)
  distinct : bool;
      (** [select distinct ...] deduplicates the result — the paper's
          report queries "may, for instance, remove duplicates URL's of
          pages that have been found updated several times" *)
  select : select;
  from : binding list;
  where : condition list;  (** conjunction *)
}

val pp : Format.formatter -> t -> unit
