(** Versioning of query answers.

    "The versioning of query answers (not detailed here) is an
    important aspect of a change control system" (paper §2.2).  An
    archive keeps the current answer of a continuous query as an
    XID-labelled tree plus a bounded chain of deltas, so that any
    retained past answer can be reconstructed — the same mechanism the
    warehouse uses for documents, applied to query results. *)

type t

(** [create ~name ~keep ()] — [keep] bounds the retained delta chain
    (default 10). *)
val create : ?keep:int -> name:string -> unit -> t

type outcome =
  | First of Xy_xml.Types.element  (** the initial full answer *)
  | Changed of Xy_xml.Types.element  (** the [<name-delta>] document *)
  | Unchanged

(** [record t answer] stores the latest evaluation and classifies the
    change, like {!Result_delta.update}, but keeping history. *)
val record : t -> Xy_xml.Types.element -> outcome

(** [version t] is the current version number (0 before any
    recording). *)
val version : t -> int

(** [current t] is the latest answer, if any. *)
val current : t -> Xy_xml.Types.element option

(** [reconstruct t ~version] rebuilds a past answer by unwinding
    deltas; [None] if that version fell off the retained window. *)
val reconstruct : t -> version:int -> Xy_xml.Types.element option

(** [delta_between t ~from_version] is the delta document from a past
    version to the current answer ([None] when out of window); this is
    what a subscriber who missed reports would be sent to catch up. *)
val delta_between : t -> from_version:int -> Xy_xml.Types.element option
