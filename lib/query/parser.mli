(** Parser for the query language.

    [parse s] parses a complete query.  [parse_body lexer ~bound]
    parses a query starting at the current position of [lexer] and
    stops cleanly at the first token that cannot extend the query —
    the subscription-language parser uses this to embed queries inside
    subscriptions.  [bound] pre-binds pseudo-variables (e.g. [URL],
    bound by the monitoring context). *)

exception Error of { line : int; message : string }

val parse : string -> Ast.t

val parse_body : Lexer.t -> bound:string list -> Ast.t

(** Clause-level entry points, used by the subscription-language
    parser to embed query fragments with its own [where] syntax. *)

(** [parse_select lexer ~bound] parses the expression after the
    [select] keyword (keyword already consumed). *)
val parse_select : Lexer.t -> bound:string list -> Ast.select

(** [parse_from lexer ~bound] parses the bindings after the [from]
    keyword; returns them with the extended bound-variable list. *)
val parse_from : Lexer.t -> bound:string list -> Ast.binding list * string list

(** [resolve_select ~bound select] re-resolves head segments of paths
    against variables bound after the select clause was read. *)
val resolve_select : bound:string list -> Ast.select -> Ast.select
