module Xid = Xy_xml.Xid

type t = {
  name : string;
  gen : Xid.gen;
  mutable previous : Xid.tree option;
}

let create ~name = { name; gen = Xid.gen (); previous = None }

type outcome =
  | First of Xy_xml.Types.element
  | Changed of Xy_xml.Types.element
  | Unchanged

let update t result =
  match t.previous with
  | None ->
      let labelled = Xid.label t.gen result in
      t.previous <- Some labelled;
      First result
  | Some old_tree ->
      let delta, new_tree = Xy_diff.Diff.diff ~gen:t.gen old_tree result in
      t.previous <- Some new_tree;
      if Xy_diff.Delta.is_empty delta then Unchanged
      else Changed (Xy_diff.Delta.to_xml ~name:t.name delta)

let current t = Option.map Xid.strip t.previous
