(** Query evaluation over document trees.

    Conjunctive select/from/where semantics: the [from] clause binds
    variables by nested iteration over path selections; bindings that
    satisfy every [where] condition contribute one instantiation of
    the [select] clause to the result.

    [contains] uses word semantics (case-insensitive whole-word match
    over the element's full text), consistent with the alerters'
    WordTable treatment of [self\\tag contains word]. *)

(** Evaluation environment. *)
type env = {
  context : Xy_xml.Types.element;  (** the query root ([self]) *)
  strings : (string * string) list;
      (** pseudo-variable bindings, e.g. [("URL", ...)]; consulted for
          a variable with no element binding *)
}

val env : ?strings:(string * string) list -> Xy_xml.Types.element -> env

exception Unbound_variable of string

(** [eval query env] returns the result nodes, one batch per
    satisfying binding of the [from] clause (duplicates preserved —
    the paper's report queries deduplicate explicitly). *)
val eval : Ast.t -> env -> Xy_xml.Types.node list

(** [eval_wrapped ~name query env] wraps the results in a [<name>]
    element, the shape continuous-query notifications carry. *)
val eval_wrapped : name:string -> Ast.t -> env -> Xy_xml.Types.element

(** [word_contains ~word text] is the word-matching predicate used by
    [contains] (shared with the alerters). *)
val word_contains : word:string -> string -> bool

(** [words_of text] tokenizes [text] into lowercase words, the
    tokenization {!word_contains} matches against — the alerters index
    document words with it. *)
val words_of : string -> string list
