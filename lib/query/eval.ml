module T = Xy_xml.Types
module Path = Xy_xml.Path

type env = { context : T.element; strings : (string * string) list }

let env ?(strings = []) context = { context; strings }

exception Unbound_variable of string

type value = V_el of T.element | V_str of string

let value_text = function V_el e -> T.text_content e | V_str s -> s

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || Char.code c >= 0x80

let words_of text =
  let text = String.lowercase_ascii text in
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush_word () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c -> if is_word_char c then Buffer.add_char buf c else flush_word ())
    text;
  flush_word ();
  List.rev !words

let word_contains ~word text =
  let word = String.lowercase_ascii word and text = String.lowercase_ascii text in
  let wlen = String.length word and tlen = String.length text in
  if wlen = 0 then false
  else
    let rec scan i =
      if i + wlen > tlen then false
      else if
        String.sub text i wlen = word
        && (i = 0 || not (is_word_char text.[i - 1]))
        && (i + wlen = tlen || not (is_word_char text.[i + wlen]))
      then true
      else scan (i + 1)
    in
    scan 0

(* Evaluate an operand to a list of values under element bindings. *)
let eval_operand env bindings operand =
  match operand with
  | Ast.O_const s -> [ V_str s ]
  | Ast.O_path (None, [ { Path.axis = Path.Child; tag = Some name } ])
    when List.mem_assoc name env.strings ->
      (* A bare identifier bound as a pseudo-variable (URL, ...)
         denotes that string, not a child element. *)
      [ V_str (List.assoc name env.strings) ]
  | Ast.O_path (None, path) ->
      List.map (fun e -> V_el e) (Path.select path env.context)
  | Ast.O_path (Some var, path) -> (
      match List.assoc_opt var bindings with
      | Some element ->
          if path = [] then [ V_el element ]
          else List.map (fun e -> V_el e) (Path.select path element)
      | None -> (
          match List.assoc_opt var env.strings with
          | Some s when path = [] -> [ V_str s ]
          | Some _ -> raise (Unbound_variable (var ^ " (path on string)"))
          | None -> raise (Unbound_variable var)))

let eval_condition env bindings condition =
  match condition with
  | Ast.C_contains (op, word) ->
      List.exists
        (fun v -> word_contains ~word (value_text v))
        (eval_operand env bindings op)
  | Ast.C_eq (a, b) ->
      let va = eval_operand env bindings a and vb = eval_operand env bindings b in
      List.exists
        (fun x -> List.exists (fun y -> value_text x = value_text y) vb)
        va
  | Ast.C_neq (a, b) ->
      let va = eval_operand env bindings a and vb = eval_operand env bindings b in
      List.exists
        (fun x -> List.exists (fun y -> value_text x <> value_text y) vb)
        va

let rec eval_construct env bindings construct =
  match construct with
  | Ast.K_text s -> [ T.Text s ]
  | Ast.K_operand op ->
      List.map
        (fun v ->
          match v with V_el e -> T.Element e | V_str s -> T.Text s)
        (eval_operand env bindings op)
  | Ast.K_element (tag, attr_templates, children) ->
      let attrs =
        List.map
          (fun (name, op) ->
            let value =
              match eval_operand env bindings op with
              | [] -> ""
              | v :: _ -> value_text v
            in
            (name, value))
          attr_templates
      in
      let child_nodes = List.concat_map (eval_construct env bindings) children in
      [ T.el tag ~attrs child_nodes ]

let eval_select env bindings select =
  match select with
  | Ast.S_operand op ->
      List.map
        (fun v ->
          match v with V_el e -> T.Element e | V_str s -> T.Text s)
        (eval_operand env bindings op)
  | Ast.S_construct k -> eval_construct env bindings k

(* Nested-loop instantiation of the from clause. *)
let rec instantiate env bindings = function
  | [] -> [ bindings ]
  | { Ast.var; base; path } :: rest ->
      let roots =
        match base with
        | None -> [ env.context ]
        | Some v -> (
            match List.assoc_opt v bindings with
            | Some e -> [ e ]
            | None -> raise (Unbound_variable v))
      in
      List.concat_map
        (fun root ->
          List.concat_map
            (fun e -> instantiate env ((var, e) :: bindings) rest)
            (Path.select path root))
        roots

let equal_node a b =
  match a, b with
  | T.Element ea, T.Element eb -> T.equal_element ea eb
  | (T.Text sa | T.Cdata sa), (T.Text sb | T.Cdata sb) -> sa = sb
  | T.Comment ca, T.Comment cb -> ca = cb
  | T.Pi (ta, ca), T.Pi (tb, cb) -> ta = tb && ca = cb
  | _, _ -> false

let dedup_nodes nodes =
  let rec go seen = function
    | [] -> []
    | node :: rest ->
        if List.exists (equal_node node) seen then go seen rest
        else node :: go (node :: seen) rest
  in
  go [] nodes

let eval query env =
  let candidate_bindings = instantiate env [] query.Ast.from in
  let results =
    List.concat_map
      (fun bindings ->
        if List.for_all (eval_condition env bindings) query.Ast.where then
          eval_select env bindings query.Ast.select
        else [])
      candidate_bindings
  in
  if query.Ast.distinct then dedup_nodes results else results

let eval_wrapped ~name query env = T.element name (eval query env)
