module Xid = Xy_xml.Xid
module T = Xy_xml.Types

type t = {
  name : string;
  keep : int;
  gen : Xid.gen;
  mutable current_tree : Xid.tree option;
  mutable current_version : int;
  (* deltas leading *to* each version, newest first: (v, delta) *)
  mutable history : (int * Xy_diff.Delta.t) list;
}

let create ?(keep = 10) ~name () =
  { name; keep; gen = Xid.gen (); current_tree = None; current_version = 0; history = [] }

type outcome =
  | First of T.element
  | Changed of T.element
  | Unchanged

let truncate keep list =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go keep list

let record t answer =
  match t.current_tree with
  | None ->
      t.current_tree <- Some (Xid.label t.gen answer);
      t.current_version <- 1;
      First answer
  | Some old_tree ->
      let delta, new_tree = Xy_diff.Diff.diff ~gen:t.gen old_tree answer in
      if Xy_diff.Delta.is_empty delta then Unchanged
      else begin
        t.current_tree <- Some new_tree;
        t.current_version <- t.current_version + 1;
        t.history <- truncate t.keep ((t.current_version, delta) :: t.history);
        Changed (Xy_diff.Delta.to_xml ~name:t.name delta)
      end

let version t = t.current_version
let current t = Option.map Xid.strip t.current_tree

(* Unwind the delta chain from the current tree back to [version]. *)
let tree_at t ~version =
  match t.current_tree with
  | None -> None
  | Some current_tree ->
      if version > t.current_version || version < 1 then None
      else begin
        let rec unwind tree past = function
          | _ when past = version -> Some tree
          | [] -> None
          | (v, delta) :: rest ->
              if v <> past then None
              else (
                match Xy_diff.Apply.apply tree (Xy_diff.Delta.invert delta) with
                | exception Failure _ -> None
                | previous -> unwind previous (past - 1) rest)
        in
        unwind current_tree t.current_version t.history
      end

let reconstruct t ~version = Option.map Xid.strip (tree_at t ~version)

let delta_between t ~from_version =
  if from_version = t.current_version then
    Some (Xy_diff.Delta.to_xml ~name:t.name [])
  else
    match tree_at t ~version:from_version, current t with
    | Some past_tree, Some current_answer ->
        (* Recompute a direct delta past -> current.  A fresh
           generator labels only the *new* nodes; matched nodes keep
           the XIDs of the past tree, which are the lineage's. *)
        let delta, _ = Xy_diff.Diff.diff ~gen:t.gen past_tree current_answer in
        Some (Xy_diff.Delta.to_xml ~name:t.name delta)
    | _, _ -> None
