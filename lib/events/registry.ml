type code = int

type entry = { code : code; mutable refs : int }

type t = {
  by_condition : (Atomic.t, entry) Hashtbl.t;
  by_code : (code, Atomic.t) Hashtbl.t;
  mutable next_code : code;
  mutable listeners :
    ([ `Added of code * Atomic.t | `Removed of code * Atomic.t ] -> unit) list;
}

let create () =
  {
    by_condition = Hashtbl.create 1024;
    by_code = Hashtbl.create 1024;
    next_code = 0;
    listeners = [];
  }

let notify t event = List.iter (fun listener -> listener event) t.listeners

let register t condition =
  match Hashtbl.find_opt t.by_condition condition with
  | Some entry ->
      entry.refs <- entry.refs + 1;
      entry.code
  | None ->
      let code = t.next_code in
      t.next_code <- code + 1;
      Hashtbl.replace t.by_condition condition { code; refs = 1 };
      Hashtbl.replace t.by_code code condition;
      notify t (`Added (code, condition));
      code

let release t condition =
  match Hashtbl.find_opt t.by_condition condition with
  | None -> raise Not_found
  | Some entry ->
      entry.refs <- entry.refs - 1;
      if entry.refs <= 0 then begin
        Hashtbl.remove t.by_condition condition;
        Hashtbl.remove t.by_code entry.code;
        notify t (`Removed (entry.code, condition));
        true
      end
      else false

let find t condition =
  Option.map (fun entry -> entry.code) (Hashtbl.find_opt t.by_condition condition)

let condition t code = Hashtbl.find_opt t.by_code code

let refcount t condition =
  match Hashtbl.find_opt t.by_condition condition with
  | None -> 0
  | Some entry -> entry.refs

let cardinal t = Hashtbl.length t.by_condition
let iter f t = Hashtbl.iter f t.by_code
let on_change t listener = t.listeners <- listener :: t.listeners
