(** Ordered sets of atomic-event codes.

    The Monitoring Query Processor treats both the events detected on
    a document (the set [S]) and each complex event (a set [c_i]) as
    *ordered* subsets of the event universe (§4.1). *)

type t = Xy_util.Sorted_ints.t

val empty : t
val of_list : int list -> t
val of_array : int array -> t
val to_list : t -> int list
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val remove_code : t -> int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
