(** Dynamic atomic-event code assignment.

    The Subscription Manager "chooses the internal codes of atomic
    events and (dynamically) warns the Alerters of the creation of new
    events, their codes and semantic" (§3).  The registry is that
    mapping: identical conditions used by several subscriptions share
    one code, with reference counting so a code is retired when the
    last subscription using it is deleted. *)

type code = int

type t

val create : unit -> t

(** [register t condition] returns the code of [condition],
    allocating one if needed, and increments its reference count.
    Codes increase monotonically, which gives the total order on
    atomic events the Monitoring Query Processor requires. *)
val register : t -> Atomic.t -> code

(** [release t condition] decrements the reference count; when it
    drops to zero the code is retired.  Returns [true] when retired.
    Raises [Not_found] if the condition was never registered. *)
val release : t -> Atomic.t -> bool

(** [find t condition] is the code of a live condition, if any. *)
val find : t -> Atomic.t -> code option

(** [condition t code] is the reverse lookup. *)
val condition : t -> code -> Atomic.t option

(** [refcount t condition] is the number of registrations minus
    releases ([0] if unknown). *)
val refcount : t -> Atomic.t -> int

(** [cardinal t] is the number of live codes — the paper's Card(A). *)
val cardinal : t -> int

(** [iter f t] applies [f code condition] to every live event. *)
val iter : (code -> Atomic.t -> unit) -> t -> unit

(** [on_change t callback] installs a listener called with
    [`Added (code, condition)] or [`Removed (code, condition)] — this
    is how alerters are "warned" of event creation/retirement. *)
val on_change :
  t -> ([ `Added of code * Atomic.t | `Removed of code * Atomic.t ] -> unit) -> unit
