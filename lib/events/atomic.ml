type status = New | Unchanged | Updated | Deleted
type scope = Anywhere | Strict
type comparator = Before | After

type element_condition = {
  change : status option;
  tag : string;
  word : (scope * string) option;
}

type t =
  | Url_equals of string
  | Url_extends of string
  | Filename_equals of string
  | Docid_equals of int
  | Dtdid_equals of int
  | Dtd_equals of string
  | Domain_equals of string
  | Last_accessed of comparator * float
  | Last_updated of comparator * float
  | Doc_status of status
  | Doc_contains of string
  | Has_tag of string
  | Element of element_condition

let is_weak = function
  | Doc_status (New | Updated | Unchanged) -> true
  | Doc_status Deleted -> false
  | Url_equals _ | Url_extends _ | Filename_equals _ | Docid_equals _
  | Dtdid_equals _ | Dtd_equals _ | Domain_equals _ | Last_accessed _
  | Last_updated _ | Doc_contains _ | Has_tag _ | Element _ ->
      false

type alerter_kind = Url_kind | Xml_kind | Html_kind

let alerter = function
  | Url_equals _ | Url_extends _ | Filename_equals _ | Docid_equals _
  | Dtdid_equals _ | Dtd_equals _ | Domain_equals _ | Last_accessed _
  | Last_updated _ | Doc_status _ ->
      Url_kind
  | Doc_contains _ -> Html_kind
  | Has_tag _ | Element _ -> Xml_kind

let equal = ( = )
let compare = Stdlib.compare

let status_to_string = function
  | New -> "new"
  | Unchanged -> "unchanged"
  | Updated -> "updated"
  | Deleted -> "deleted"

let comparator_to_string = function Before -> "<" | After -> ">"

let to_string = function
  | Url_equals s -> Printf.sprintf "URL = %S" s
  | Url_extends s -> Printf.sprintf "URL extends %S" s
  | Filename_equals s -> Printf.sprintf "filename = %S" s
  | Docid_equals i -> Printf.sprintf "DOCID = %d" i
  | Dtdid_equals i -> Printf.sprintf "DTDID = %d" i
  | Dtd_equals s -> Printf.sprintf "DTD = %S" s
  | Domain_equals s -> Printf.sprintf "domain = %S" s
  | Last_accessed (c, t) ->
      Printf.sprintf "LastAccessed %s %g" (comparator_to_string c) t
  | Last_updated (c, t) ->
      Printf.sprintf "LastUpdate %s %g" (comparator_to_string c) t
  | Doc_status s -> Printf.sprintf "%s self" (status_to_string s)
  | Doc_contains w -> Printf.sprintf "self contains %S" w
  | Has_tag t -> Printf.sprintf "self\\\\%s" t
  | Element { change; tag; word } ->
      let change_part =
        match change with None -> "" | Some s -> status_to_string s ^ " "
      in
      let word_part =
        match word with
        | None -> ""
        | Some (Anywhere, w) -> Printf.sprintf " contains %S" w
        | Some (Strict, w) -> Printf.sprintf " strict contains %S" w
      in
      Printf.sprintf "%sself\\\\%s%s" change_part tag word_part

let pp ppf t = Format.pp_print_string ppf (to_string t)
