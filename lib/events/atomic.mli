(** Atomic events.

    "The whole monitoring is based upon the detection of atomic
    events" (§3).  An atomic event corresponds to one atomic condition
    of a monitoring query's [where] clause (§5.1); each distinct
    condition registered in the system is assigned one integer code by
    the Subscription Manager and detected by the alerter responsible
    for its kind. *)

(** Document change status (the paper's change patterns). *)
type status = New | Unchanged | Updated | Deleted

(** Scope of a [contains] condition: anywhere in the element's
    subtree, or directly in the element's own text ([strict]). *)
type scope = Anywhere | Strict

type comparator = Before | After

(** An element-level condition:
    [(change) self\\tag ((strict) contains word)].  At least one of
    [change] and [word] is present — a bare tag test is expressed with
    [Has_tag]. *)
type element_condition = {
  change : status option;
  tag : string;
  word : (scope * string) option;
}

type t =
  (* URL-alerter conditions (metadata, §5.1 / §6.2) *)
  | Url_equals of string
  | Url_extends of string  (** prefix pattern, ["http://x/" ^ "*"] *)
  | Filename_equals of string  (** tail of the URL, e.g. [index.html] *)
  | Docid_equals of int
  | Dtdid_equals of int
  | Dtd_equals of string
  | Domain_equals of string  (** semantic domain, e.g. ["biology"] *)
  | Last_accessed of comparator * float
  | Last_updated of comparator * float
  | Doc_status of status  (** [new self], [updated self], ... — weak *)
  (* XML / HTML alerter conditions (content) *)
  | Doc_contains of string  (** [self contains word] *)
  | Has_tag of string  (** document contains an element with this tag *)
  | Element of element_condition

(** Weak events are the document statuses [new], [updated] and
    [unchanged]: "it is likely that each document we read will raise
    one atomic event in new, unchanged, updated", so a where clause
    made only of weak conditions is disallowed (§5.1). *)
val is_weak : t -> bool

(** The alerter responsible for detecting a condition. *)
type alerter_kind = Url_kind | Xml_kind | Html_kind

val alerter : t -> alerter_kind

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val status_to_string : status -> string
