module S = Xy_util.Sorted_ints

type t = S.t

let empty : t = [||]
let of_list = S.of_list
let of_array = S.of_array
let to_list = S.to_list
let cardinal = S.cardinal
let is_empty = S.is_empty
let mem = S.mem
let subset = S.subset
let union = S.union
let inter = S.inter
let remove_code t code = S.diff t [| code |]
let equal = S.equal
let pp = S.pp
