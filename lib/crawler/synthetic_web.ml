module T = Xy_xml.Types
module Prng = Xy_util.Prng

type kind = Xml_page | Html_page

type page = {
  url : string;
  kind : kind;
  mutable content : string;
  change_rate : float;
  mutable changed_at : float option;
      (** birth time (virtual) of the oldest content change the
          crawler has not yet observed; [None] when the crawler is
          current *)
}

type t = {
  mutable prng : Prng.t;
  pages : (string, page) Hashtbl.t;
  mutable order : string list;  (** urls in creation order *)
  mutable next_page_id : int;
  word_pool : string array;
  mutable sites : (string * [ `Catalog | `Members | `Museum | `News ]) array;
  mutable vnow : float;
      (** the web's own virtual clock, advanced by {!evolve} in
          lockstep with the system clock — birth stamps come from it *)
}

let product_words =
  [|
    "camera"; "television"; "radio"; "laptop"; "phone"; "speaker"; "electronic";
    "digital"; "wireless"; "portable"; "compact"; "professional"; "battery";
    "screen"; "hifi"; "stereo"; "lens"; "tripod"; "charger"; "cable";
  |]

let site_kinds = [| `Catalog; `Members; `Museum; `News |]

let host t i =
  ignore t;
  Printf.sprintf "http://site%d.example.org" i

let pick_words t n =
  String.concat " " (List.init n (fun _ -> Prng.pick t.prng t.word_pool))

let catalog_product t ~name ~words =
  T.el "product"
    [
      T.el "name" [ T.text name ];
      T.el "price" [ T.text (string_of_int (10 + Prng.int t.prng 990)) ];
      T.el "desc" [ T.text words ];
    ]

let gen_catalog t ~site =
  let products =
    List.init
      (2 + Prng.int t.prng 6)
      (fun i ->
        catalog_product t
          ~name:(Printf.sprintf "item%d" i)
          ~words:(pick_words t 4))
  in
  let doc =
    T.doc
      ~doctype:
        {
          T.root_name = "catalog";
          system_id = Some (Printf.sprintf "%s/dtd/catalog.dtd" site);
          public_id = None;
          internal_subset = None;
        }
      (T.element "catalog" products)
  in
  Xy_xml.Printer.doc_to_string doc

let gen_members t =
  let members =
    List.init
      (2 + Prng.int t.prng 5)
      (fun _ ->
        T.el "Member"
          [
            T.el "name" [ T.text (Prng.word t.prng) ];
            T.el "fn" [ T.text (Prng.word t.prng) ];
          ])
  in
  Xy_xml.Printer.doc_to_string (T.doc (T.element "team" members))

let gen_museum t =
  let paintings =
    List.init
      (1 + Prng.int t.prng 4)
      (fun _ -> T.el "painting" [ T.el "title" [ T.text (pick_words t 2) ] ])
  in
  let museum =
    T.el "museum"
      (T.el "address" [ T.text (Prng.pick t.prng [| "Amsterdam"; "Paris"; "Rome" |]) ]
      :: paintings)
  in
  Xy_xml.Printer.doc_to_string (T.doc (T.element "culture" [ museum ]))

let gen_html t =
  Printf.sprintf "<html><head><title>%s</title></head><body><p>%s</p></body></html>"
    (Prng.word t.prng) (pick_words t 12)

let gen_content t ~site_kind ~site =
  match site_kind with
  | `Catalog -> (gen_catalog t ~site, Xml_page)
  | `Members -> (gen_members t, Xml_page)
  | `Museum -> (gen_museum t, Xml_page)
  | `News -> (gen_html t, Html_page)

let add_page t ~site ~site_kind =
  let id = t.next_page_id in
  t.next_page_id <- id + 1;
  let content, kind = gen_content t ~site_kind ~site in
  let extension = match kind with Xml_page -> "xml" | Html_page -> "html" in
  let url = Printf.sprintf "%s/page%d.%s" site id extension in
  (* Zipf-ish rate skew: a few pages change many times a day, the
     bulk almost never. *)
  let rate = 5. /. float_of_int (1 + Prng.int t.prng 50) in
  let page = { url; kind; content; change_rate = rate; changed_at = None } in
  Hashtbl.replace t.pages url page;
  t.order <- url :: t.order;
  page

let generate ?(seed = 1) ~sites ~pages_per_site () =
  let t =
    {
      prng = Prng.create ~seed;
      pages = Hashtbl.create (sites * pages_per_site);
      order = [];
      next_page_id = 0;
      word_pool = product_words;
      sites = [||];
      vnow = 0.;
    }
  in
  t.sites <-
    Array.init sites (fun i ->
        (host t i, site_kinds.(i mod Array.length site_kinds)));
  Array.iter
    (fun (site, site_kind) ->
      for _ = 1 to pages_per_site do
        ignore (add_page t ~site ~site_kind)
      done)
    t.sites;
  t

let urls t = List.rev t.order
let page_count t = Hashtbl.length t.pages

let fetch t ~url =
  Option.map (fun p -> p.content) (Hashtbl.find_opt t.pages url)

let kind_of t ~url = Option.map (fun p -> p.kind) (Hashtbl.find_opt t.pages url)

(* {2 Staleness accounting} — each real content change stamps the page
   with the web's virtual clock, *kept* until the crawler observes the
   page, so the stamp always names the oldest unobserved change. *)

let vnow t = t.vnow

let stamp_changed t page =
  if page.changed_at = None then page.changed_at <- Some t.vnow

let take_change_birth t ~url =
  match Hashtbl.find_opt t.pages url with
  | None -> None
  | Some page ->
      let birth = page.changed_at in
      page.changed_at <- None;
      birth

let oldest_pending t =
  Hashtbl.fold
    (fun _ page acc ->
      match page.changed_at, acc with
      | None, acc -> acc
      | Some b, None -> Some b
      | Some b, Some a -> Some (Float.min a b))
    t.pages None

let pending_changes t =
  Hashtbl.fold
    (fun _ page acc -> if page.changed_at = None then acc else acc + 1)
    t.pages 0

(* One content mutation.  XML pages get a structural edit; HTML pages
   get new text. *)
let mutate_page t page =
  match page.kind with
  | Html_page -> page.content <- gen_html t
  | Xml_page -> (
      match Xy_xml.Parser.parse page.content with
      | exception Xy_xml.Parser.Error _ -> ()
      | doc ->
          let root = doc.T.root in
          let children = root.T.children in
          let element_children = T.children_elements root in
          let choice = Prng.int t.prng 3 in
          let new_children =
            if choice = 0 || element_children = [] then
              (* insert an element matching the page vocabulary *)
              let fresh =
                match element_children with
                | first :: _ -> (
                    match first.T.tag with
                    | "product" ->
                        catalog_product t
                          ~name:(Prng.word t.prng)
                          ~words:(pick_words t 4)
                    | "Member" ->
                        T.el "Member" [ T.el "name" [ T.text (Prng.word t.prng) ] ]
                    | tag -> T.el tag [ T.text (pick_words t 2) ])
                | [] -> T.el "entry" [ T.text (pick_words t 2) ]
              in
              children @ [ fresh ]
            else if choice = 1 && List.length element_children > 1 then
              (* delete one element child *)
              let victim = Prng.int t.prng (List.length element_children) in
              let rec drop i = function
                | [] -> []
                | T.Element _ :: rest when i = victim -> drop (i + 1) rest
                | (T.Element _ as e) :: rest -> e :: drop (i + 1) rest
                | node :: rest -> node :: drop i rest
              in
              (* index only element children *)
              let rec drop_nth i = function
                | [] -> []
                | T.Element e :: rest ->
                    if i = victim then rest
                    else T.Element e :: drop_nth (i + 1) rest
                | node :: rest -> node :: drop_nth i rest
              in
              ignore drop;
              drop_nth 0 children
            else
              (* update: rewrite the text of one element, deeply *)
              let victim = Prng.int t.prng (max 1 (List.length element_children)) in
              let rec rewrite i = function
                | [] -> []
                | T.Element e :: rest when i = victim ->
                    let rec retext (e : T.element) =
                      match e.T.children with
                      | [] -> { e with T.children = [ T.text (pick_words t 2) ] }
                      | _ ->
                          let children =
                            List.map
                              (fun node ->
                                match node with
                                | T.Text _ -> T.text (pick_words t 3)
                                | T.Element sub -> T.Element (retext sub)
                                | other -> other)
                              e.T.children
                          in
                          { e with T.children }
                    in
                    T.Element (retext e) :: rest
                | T.Element e :: rest -> T.Element e :: rewrite (i + 1) rest
                | node :: rest -> node :: rewrite i rest
              in
              rewrite 0 children
          in
          let doc = { doc with T.root = { root with T.children = new_children } } in
          page.content <- Xy_xml.Printer.doc_to_string doc)

let mutate t ~url =
  match Hashtbl.find_opt t.pages url with
  | Some page ->
      let before = page.content in
      mutate_page t page;
      if page.content <> before then stamp_changed t page
  | None -> ()

let remove t ~url =
  Hashtbl.remove t.pages url;
  t.order <- List.filter (fun u -> u <> url) t.order

let evolve t ~elapsed =
  let days = elapsed /. 86400. in
  t.vnow <- t.vnow +. elapsed;
  let changed = ref 0 in
  (* Walk pages in creation order, not hash-table order: the draw a
     page receives must be a pure function of web *state* so that a
     restored web (whose table has a different insertion history)
     evolves identically. *)
  List.iter
    (fun url ->
      match Hashtbl.find_opt t.pages url with
      | None -> ()
      | Some page ->
          let p_change = 1. -. exp (-.page.change_rate *. days) in
          if Prng.float t.prng 1. < p_change then begin
            let before = page.content in
            mutate_page t page;
            (* The XML-parse-error branch of [mutate_page] is a silent
               no-op: only a real content change is a birth. *)
            if page.content <> before then begin
              stamp_changed t page;
              incr changed
            end
          end)
    (List.rev t.order);
  (* Page birth and death: a small per-site rate. *)
  if Array.length t.sites > 0 then begin
    let site_count = float_of_int (Array.length t.sites) in
    if Prng.float t.prng 1. < Float.min 0.9 (days *. 0.05 *. site_count) then begin
      let site, site_kind = Prng.pick t.prng t.sites in
      let born = add_page t ~site ~site_kind in
      (* a page born mid-run is itself unobserved content *)
      stamp_changed t born
    end;
    if
      Hashtbl.length t.pages > 2
      && Prng.float t.prng 1. < Float.min 0.9 (days *. 0.02 *. site_count)
    then begin
      let urls = Array.of_list t.order in
      let victim = Prng.pick t.prng urls in
      Hashtbl.remove t.pages victim;
      t.order <- List.filter (fun u -> u <> victim) t.order
    end
  end;
  !changed

(* {2 Durability} — the web is part of the simulation state: a warm
   restart must resume it (pages, creation order, PRNG stream) at
   exactly the checkpointed position, then replay the journaled
   [evolve] calls deterministically. *)
module Codec = Xy_util.Codec

let encode_snapshot t =
  let buf = Buffer.create 4096 in
  Codec.string buf (Prng.to_string t.prng);
  Codec.int buf t.next_page_id;
  Codec.float buf t.vnow;
  Codec.list buf
    (fun buf (site, site_kind) ->
      Codec.string buf site;
      Codec.string buf
        (match site_kind with
        | `Catalog -> "catalog"
        | `Members -> "members"
        | `Museum -> "museum"
        | `News -> "news"))
    (Array.to_list t.sites);
  Codec.list buf
    (fun buf url ->
      let page = Hashtbl.find t.pages url in
      Codec.string buf url;
      Codec.string buf (match page.kind with Xml_page -> "x" | Html_page -> "h");
      Codec.string buf page.content;
      Codec.float buf page.change_rate;
      (match page.changed_at with
      | None -> Codec.bool buf false
      | Some birth ->
          Codec.bool buf true;
          Codec.float buf birth))
    (List.rev t.order)
  (* creation order, oldest first *);
  Buffer.contents buf

let decode_snapshot t payload =
  let reader = Codec.reader payload in
  let prng = Prng.of_string (Codec.read_string reader) in
  let next_page_id = Codec.read_int reader in
  let vnow = Codec.read_float reader in
  let sites =
    Codec.read_list reader (fun r ->
        let site = Codec.read_string r in
        let site_kind =
          match Codec.read_string r with
          | "catalog" -> `Catalog
          | "members" -> `Members
          | "museum" -> `Museum
          | "news" -> `News
          | s -> raise (Codec.Malformed ("unknown site kind " ^ s))
        in
        (site, site_kind))
  in
  let pages =
    Codec.read_list reader (fun r ->
        let url = Codec.read_string r in
        let kind =
          match Codec.read_string r with
          | "x" -> Xml_page
          | "h" -> Html_page
          | s -> raise (Codec.Malformed ("unknown page kind " ^ s))
        in
        let content = Codec.read_string r in
        let change_rate = Codec.read_float r in
        let changed_at =
          if Codec.read_bool r then Some (Codec.read_float r) else None
        in
        { url; kind; content; change_rate; changed_at })
  in
  Codec.expect_end reader;
  t.prng <- prng;
  t.next_page_id <- next_page_id;
  t.vnow <- vnow;
  t.sites <- Array.of_list sites;
  Hashtbl.reset t.pages;
  t.order <- [];
  List.iter
    (fun page ->
      Hashtbl.replace t.pages page.url page;
      t.order <- page.url :: t.order)
    pages

let add_catalog_product t ~url ~name ~words =
  match Hashtbl.find_opt t.pages url with
  | None -> ()
  | Some page -> (
      match Xy_xml.Parser.parse page.content with
      | exception Xy_xml.Parser.Error _ -> ()
      | doc ->
          let root = doc.T.root in
          let product = catalog_product t ~name ~words in
          (* keep deterministic content: overwrite the random price *)
          let product =
            match product with
            | T.Element e ->
                T.Element
                  {
                    e with
                    T.children =
                      List.map
                        (fun node ->
                          match node with
                          | T.Element ({ T.tag = "desc"; _ } as d) ->
                              T.Element { d with T.children = [ T.text words ] }
                          | other -> other)
                        e.T.children;
                  }
            | other -> other
          in
          let doc =
            { doc with T.root = { root with T.children = root.T.children @ [ product ] } }
          in
          page.content <- Xy_xml.Printer.doc_to_string doc;
          stamp_changed t page)
