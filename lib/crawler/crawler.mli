(** The crawler: drains the fetch queue against the (synthetic) web.

    "Currently, one Xyleme crawler is able to fetch about 4 million
    pages per day, that is approximately 50 per second" — the crawl
    rate here is bounded by the per-step [limit] the caller passes,
    letting benches reproduce that regime. *)

type fetch = {
  url : string;
  content : string option;  (** [None]: the page disappeared *)
  kind : Synthetic_web.kind option;
  trace : Xy_trace.Trace.ctx option;
      (** tracing context when this fetch was sampled *)
}

type t

(** [create ~web ~queue ()] — fetch metrics are registered under the
    [crawler] stage of [obs] (default {!Xy_obs.Obs.default}).  When a
    [tracer] is given, each fetch makes the 1-in-N sampling decision
    and a sampled fetch carries a trace context with a [fetch] span
    already recorded. *)
val create :
  ?obs:Xy_obs.Obs.t ->
  ?tracer:Xy_trace.Trace.t ->
  web:Synthetic_web.t ->
  queue:Fetch_queue.t ->
  unit ->
  t

(** [discover t] adds every currently known web URL to the queue
    (bootstrap; newly born pages are discovered by later calls). *)
val discover : t -> unit

(** [step t ~limit] fetches up to [limit] due pages.  The caller must
    report each outcome back with {!conclude} after loading, so the
    queue adapts the refresh period. *)
val step : t -> limit:int -> fetch list

(** [conclude t ~url ~changed] finishes one fetch. *)
val conclude : t -> url:string -> changed:bool -> unit

val fetches : t -> int
