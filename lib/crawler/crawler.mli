(** The crawler: drains the fetch queue against the (synthetic) web.

    "Currently, one Xyleme crawler is able to fetch about 4 million
    pages per day, that is approximately 50 per second" — the crawl
    rate here is bounded by the per-step [limit] the caller passes,
    letting benches reproduce that regime. *)

type fetch = {
  url : string;
  content : string option;  (** [None]: the page disappeared *)
  kind : Synthetic_web.kind option;
  trace : Xy_trace.Trace.ctx option;
      (** tracing context when this fetch was sampled *)
  birth : float option;
      (** virtual birth time of the oldest change this fetch observed
          ({!Synthetic_web.take_change_birth}); rides the document
          downstream so the reporter can record notification lag *)
}

type t

(** Bounded-retry policy for transient fetch failures.  The [n]-th
    consecutive failure of a URL retries after
    [backoff * backoff_factor^(n-1)] seconds plus up to [jitter] of
    that as deterministic jitter; a URL of a site with at least
    [site_threshold] accumulated failures (a repeat offender) waits
    twice as long again.  After [max_retries] failures the URL is
    requeued at demoted importance (period multiplied by
    [demote_factor]) — never dropped. *)
type retry_policy = {
  max_retries : int;
  backoff : float;  (** seconds before the first retry *)
  backoff_factor : float;
  jitter : float;  (** fraction of the backoff, in [0, 1] *)
  demote_factor : float;
  site_threshold : int;
}

(** 3 retries, 5 min backoff doubling with 50 % jitter, period
    doubled on exhaustion, sites flagged at 10 failures. *)
val default_retry : retry_policy

(** [create ~web ~queue ()] — fetch metrics are registered under the
    [crawler] stage of [obs] (default {!Xy_obs.Obs.default}).  When a
    [tracer] is given, each fetch makes the 1-in-N sampling decision
    and a sampled fetch carries a trace context with a [fetch] span
    already recorded.

    [faults] (default {!Xy_fault.Fault.none}) drives the [fetch]
    failure point (a due fetch fails transiently and enters the
    [retry] path) and the [malformed] point (fetched content is
    mangled before the alerters see it).  Failure/retry accounting
    lands in the [fault] stage of [obs]: [fetch_failures],
    [fetch_retries], [retry_exhausted], [requeued_demoted] counters
    and the [flagged_sites] gauge.

    [clock] binds the system's virtual clock for staleness accounting
    (without it, the web's own {!Synthetic_web.vnow} serves): each
    successful fetch of a changed page records birth → now in the
    [crawler/detection_lag] histogram ({!Xy_obs.Obs.staleness_buckets}),
    and {!update_watermark} maintains the
    [crawler/staleness_watermark_age] and
    [crawler/staleness_pending_changes] gauges. *)
val create :
  ?obs:Xy_obs.Obs.t ->
  ?clock:Xy_util.Clock.t ->
  ?tracer:Xy_trace.Trace.t ->
  ?faults:Xy_fault.Fault.t ->
  ?retry:retry_policy ->
  web:Synthetic_web.t ->
  queue:Fetch_queue.t ->
  unit ->
  t

(** [discover t] adds every currently known web URL to the queue
    (bootstrap; newly born pages are discovered by later calls). *)
val discover : t -> unit

(** [step t ~limit] fetches up to [limit] due pages.  The caller must
    report each outcome back with {!conclude} after loading, so the
    queue adapts the refresh period.  A fetch failed by the [fetch]
    fault point emits no record — the URL is rescheduled internally
    (retry or demotion) and must not be concluded. *)
val step : t -> limit:int -> fetch list

(** [fetch_one t ~url] fetches a single already-popped URL — the
    per-document half of {!step}, exposed so a durable system can
    bracket each document's pop + fetch + ingest in one WAL
    transaction.  [None] means the fetch failed transiently and was
    rescheduled internally (do not conclude it). *)
val fetch_one : t -> url:string -> fetch option

(** [conclude t ~url ~changed] finishes one fetch. *)
val conclude : t -> url:string -> changed:bool -> unit

val fetches : t -> int

(** [site_failures t ~url] is the accumulated failure count of [url]'s
    site (decayed by one per successful fetch from that site). *)
val site_failures : t -> url:string -> int

(** [pending_retries t] is how many URLs currently sit in the bounded
    retry path. *)
val pending_retries : t -> int

(** [update_watermark t] refreshes the freshness-watermark gauges from
    the web's pending-change stamps; the scheduler calls it once per
    advance/crawl step. *)
val update_watermark : t -> unit

(** {2 Durability} — retry/penalty bookkeeping (attempt counts, site
    failure tallies, the fetch counter) journals each mutation's
    post-state and snapshots wholesale. *)

val set_journal : t -> (string -> unit) option -> unit
val encode_snapshot : t -> string

(** Raises {!Xy_util.Codec.Malformed} on damage. *)
val decode_snapshot : t -> string -> unit

val apply_op : t -> string -> unit
