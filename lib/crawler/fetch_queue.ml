module Schedule = Xy_trigger.Schedule
module Obs = Xy_obs.Obs

type entry = {
  mutable refresh_period : float;
  mutable ceiling : float;  (** subscription boost: period <= ceiling *)
  mutable live : bool;
  mutable queued : bool;  (** a heap entry at [deadline] is pending *)
  mutable deadline : float;  (** authoritative next fetch time *)
}

type metrics = {
  depth : Obs.Gauge.t;
  boosts : Obs.Counter.t;
  resurrected : Obs.Counter.t;
  served : Obs.Counter.t;
  retried : Obs.Counter.t;
  demoted : Obs.Counter.t;
}

type t = {
  clock : Xy_util.Clock.t;
  initial_period : float;
  min_period : float;
  max_period : float;
  entries : (string, entry) Hashtbl.t;
  schedule : string Schedule.t;
  metrics : metrics;
}

let stage = "crawler"

let create ?(initial_period = 86400.) ?(min_period = 3600.)
    ?(max_period = 4. *. 7. *. 86400.) ?(obs = Obs.default) ~clock () =
  {
    clock;
    initial_period;
    min_period;
    max_period;
    entries = Hashtbl.create 1024;
    schedule = Schedule.create ();
    metrics =
      {
        depth = Obs.gauge obs ~stage "due_queue_depth";
        boosts = Obs.counter obs ~stage "boosts";
        resurrected = Obs.counter obs ~stage "boost_resurrected";
        served = Obs.counter obs ~stage "due_served";
        retried = Obs.counter obs ~stage "retried";
        demoted = Obs.counter obs ~stage "demoted";
      };
  }

let clock t = t.clock

let update_depth t =
  Obs.Gauge.set_int t.metrics.depth (Schedule.size t.schedule)

let add t ~url =
  if not (Hashtbl.mem t.entries url) then begin
    let now = Xy_util.Clock.now t.clock in
    Hashtbl.replace t.entries url
      {
        refresh_period = t.initial_period;
        ceiling = t.max_period;
        live = true;
        queued = true;
        deadline = now;
      };
    (* first fetch due immediately *)
    Schedule.add t.schedule ~at:now url;
    update_depth t
  end

let forget t ~url =
  match Hashtbl.find_opt t.entries url with
  | Some entry -> entry.live <- false
  | None -> ()

let clamp t entry =
  entry.refresh_period <-
    Float.min entry.ceiling
      (Float.max t.min_period (Float.min t.max_period entry.refresh_period))

let boost t ~url ~period =
  add t ~url;
  let entry = Hashtbl.find t.entries url in
  if not entry.live then begin
    (* resurrect a forgotten URL: a subscription re-demands it *)
    entry.live <- true;
    Obs.Counter.incr t.metrics.resurrected
  end;
  entry.ceiling <- Float.max t.min_period period;
  clamp t entry;
  Obs.Counter.incr t.metrics.boosts;
  let target = Xy_util.Clock.now t.clock +. entry.refresh_period in
  if not entry.queued then begin
    (* nothing pending (served then forgotten): schedule anew *)
    entry.queued <- true;
    entry.deadline <- target;
    Schedule.add t.schedule ~at:target url;
    update_depth t
  end
  else if target < entry.deadline then begin
    (* The clamped period shortens the pending deadline: supersede the
       possibly weeks-away heap entry.  The old entry is deleted
       lazily — [pop_due] skips entries whose time no longer matches
       the authoritative [deadline]. *)
    entry.deadline <- target;
    Schedule.add t.schedule ~at:target url;
    update_depth t
  end

let pop_due t ~limit =
  let now = Xy_util.Clock.now t.clock in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Schedule.peek_time t.schedule with
      | Some at when at <= now -> (
          match Schedule.pop_next t.schedule with
          | None -> List.rev acc
          | Some (at, url) -> (
              match Hashtbl.find_opt t.entries url with
              | Some entry when not entry.queued ->
                  (* stale: already served this cycle *)
                  go acc n
              | Some entry when at <> entry.deadline ->
                  (* stale: superseded by a boost reschedule *)
                  go acc n
              | Some entry when entry.live ->
                  entry.queued <- false;
                  Obs.Counter.incr t.metrics.served;
                  go (url :: acc) (n - 1)
              | Some _ ->
                  (* dead entry drained from the heap *)
                  Hashtbl.remove t.entries url;
                  go acc n
              | None -> go acc n))
      | Some _ | None -> List.rev acc
  in
  let served = go [] limit in
  update_depth t;
  served

(* A fetch that failed after [pop_due] left its entry dequeued
   ([queued = false]) with nothing pending in the heap: without an
   explicit requeue the URL would only ever come back through a
   subscription boost.  [retry] puts the in-flight URL back at
   [now + delay] leaving its refresh period untouched. *)
let retry t ~url ~delay =
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry when entry.live && not entry.queued ->
      entry.queued <- true;
      let at = Xy_util.Clock.now t.clock +. Float.max 0. delay in
      entry.deadline <- at;
      Schedule.add t.schedule ~at url;
      Obs.Counter.incr t.metrics.retried;
      update_depth t
  | Some _ -> ()

(* Retry exhaustion: the URL is kept — losing it would break the
   "loses no subscriptions" contract — but demoted in importance: its
   refresh period is multiplied by [factor] (clamped; a subscription
   boost ceiling still wins, those pages are demanded regardless of
   flakiness) and the next attempt is scheduled a full period away. *)
let penalize t ~url ~factor =
  if factor < 1. then invalid_arg "Fetch_queue.penalize: factor < 1";
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry when entry.live && not entry.queued ->
      entry.refresh_period <- entry.refresh_period *. factor;
      clamp t entry;
      entry.queued <- true;
      let at = Xy_util.Clock.now t.clock +. entry.refresh_period in
      entry.deadline <- at;
      Schedule.add t.schedule ~at url;
      Obs.Counter.incr t.metrics.demoted;
      update_depth t
  | Some entry ->
      (* Not in flight (e.g. already rescheduled by a boost): still
         demote the period so the offender is fetched less often. *)
      if entry.live then begin
        entry.refresh_period <- entry.refresh_period *. factor;
        clamp t entry;
        Obs.Counter.incr t.metrics.demoted
      end

let mark_fetched t ~url ~changed =
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry ->
      if entry.live && not entry.queued then begin
        entry.refresh_period <-
          (if changed then entry.refresh_period *. 0.5
           else entry.refresh_period *. 1.5);
        clamp t entry;
        entry.queued <- true;
        let at = Xy_util.Clock.now t.clock +. entry.refresh_period in
        entry.deadline <- at;
        Schedule.add t.schedule ~at url;
        update_depth t
      end

let next_deadline t = Schedule.peek_time t.schedule

let period t ~url =
  Option.map (fun e -> e.refresh_period) (Hashtbl.find_opt t.entries url)

let known_count t =
  Hashtbl.fold (fun _ e acc -> if e.live then acc + 1 else acc) t.entries 0
