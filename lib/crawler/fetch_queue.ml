module Schedule = Xy_trigger.Schedule

type entry = {
  mutable refresh_period : float;
  mutable ceiling : float;  (** subscription boost: period <= ceiling *)
  mutable live : bool;
  mutable queued : bool;  (** present in the heap *)
}

type t = {
  clock : Xy_util.Clock.t;
  initial_period : float;
  min_period : float;
  max_period : float;
  entries : (string, entry) Hashtbl.t;
  schedule : string Schedule.t;
}

let create ?(initial_period = 86400.) ?(min_period = 3600.)
    ?(max_period = 4. *. 7. *. 86400.) ~clock () =
  {
    clock;
    initial_period;
    min_period;
    max_period;
    entries = Hashtbl.create 1024;
    schedule = Schedule.create ();
  }

let add t ~url =
  if not (Hashtbl.mem t.entries url) then begin
    Hashtbl.replace t.entries url
      {
        refresh_period = t.initial_period;
        ceiling = t.max_period;
        live = true;
        queued = true;
      };
    (* first fetch due immediately *)
    Schedule.add t.schedule ~at:(Xy_util.Clock.now t.clock) url
  end

let forget t ~url =
  match Hashtbl.find_opt t.entries url with
  | Some entry -> entry.live <- false
  | None -> ()

let clamp t entry =
  entry.refresh_period <-
    Float.min entry.ceiling
      (Float.max t.min_period (Float.min t.max_period entry.refresh_period))

let boost t ~url ~period =
  add t ~url;
  let entry = Hashtbl.find t.entries url in
  entry.ceiling <- Float.max t.min_period period;
  clamp t entry

let pop_due t ~limit =
  let now = Xy_util.Clock.now t.clock in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Schedule.peek_time t.schedule with
      | Some at when at <= now -> (
          match Schedule.pop_next t.schedule with
          | None -> List.rev acc
          | Some (_, url) -> (
              match Hashtbl.find_opt t.entries url with
              | Some entry when entry.live ->
                  entry.queued <- false;
                  go (url :: acc) (n - 1)
              | Some entry ->
                  (* dead entry drained from the heap *)
                  entry.queued <- false;
                  Hashtbl.remove t.entries url;
                  go acc n
              | None -> go acc n))
      | Some _ | None -> List.rev acc
  in
  go [] limit

let mark_fetched t ~url ~changed =
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry ->
      if entry.live && not entry.queued then begin
        entry.refresh_period <-
          (if changed then entry.refresh_period *. 0.5
           else entry.refresh_period *. 1.5);
        clamp t entry;
        entry.queued <- true;
        Schedule.add t.schedule
          ~at:(Xy_util.Clock.now t.clock +. entry.refresh_period)
          url
      end

let next_deadline t = Schedule.peek_time t.schedule

let period t ~url =
  Option.map (fun e -> e.refresh_period) (Hashtbl.find_opt t.entries url)

let known_count t =
  Hashtbl.fold (fun _ e acc -> if e.live then acc + 1 else acc) t.entries 0
