module Schedule = Xy_trigger.Schedule
module Obs = Xy_obs.Obs

type entry = {
  mutable refresh_period : float;
  mutable ceiling : float;  (** subscription boost: period <= ceiling *)
  mutable live : bool;
  mutable queued : bool;  (** a heap entry at [deadline] is pending *)
  mutable deadline : float;  (** authoritative next fetch time *)
}

type metrics = {
  depth : Obs.Gauge.t;
  boosts : Obs.Counter.t;
  resurrected : Obs.Counter.t;
  served : Obs.Counter.t;
  retried : Obs.Counter.t;
  demoted : Obs.Counter.t;
}

type t = {
  clock : Xy_util.Clock.t;
  initial_period : float;
  min_period : float;
  max_period : float;
  entries : (string, entry) Hashtbl.t;
  mutable schedule : string Schedule.t;
  metrics : metrics;
  mutable journal : (string -> unit) option;
}

let stage = "crawler"

let create ?(initial_period = 86400.) ?(min_period = 3600.)
    ?(max_period = 4. *. 7. *. 86400.) ?(obs = Obs.default) ~clock () =
  {
    clock;
    initial_period;
    min_period;
    max_period;
    entries = Hashtbl.create 1024;
    schedule = Schedule.create ();
    metrics =
      {
        depth = Obs.gauge obs ~stage "due_queue_depth";
        boosts = Obs.counter obs ~stage "boosts";
        resurrected = Obs.counter obs ~stage "boost_resurrected";
        served = Obs.counter obs ~stage "due_served";
        retried = Obs.counter obs ~stage "retried";
        demoted = Obs.counter obs ~stage "demoted";
      };
    journal = None;
  }

let clock t = t.clock

(* Durability: every mutation journals the entry's post-state — replay
   upserts, and [pop_due]'s staleness checks (deadline mismatch,
   already-dequeued) make the duplicate heap entries replay creates
   harmless. *)
module Codec = Xy_util.Codec

let set_journal t emit = t.journal <- emit

let encode_entry url entry =
  let buf = Buffer.create 64 in
  Codec.string buf url;
  Codec.bool buf true;
  Codec.float buf entry.refresh_period;
  Codec.float buf entry.ceiling;
  Codec.bool buf entry.live;
  Codec.bool buf entry.queued;
  Codec.float buf entry.deadline;
  Buffer.contents buf

let encode_removal url =
  let buf = Buffer.create 32 in
  Codec.string buf url;
  Codec.bool buf false;
  Buffer.contents buf

let journal_entry t url entry =
  match t.journal with None -> () | Some emit -> emit (encode_entry url entry)

let journal_removal t url =
  match t.journal with None -> () | Some emit -> emit (encode_removal url)

let update_depth t =
  Obs.Gauge.set_int t.metrics.depth (Schedule.size t.schedule)

let add t ~url =
  if not (Hashtbl.mem t.entries url) then begin
    let now = Xy_util.Clock.now t.clock in
    let entry =
      {
        refresh_period = t.initial_period;
        ceiling = t.max_period;
        live = true;
        queued = true;
        deadline = now;
      }
    in
    Hashtbl.replace t.entries url entry;
    (* first fetch due immediately *)
    Schedule.add t.schedule ~at:now url;
    update_depth t;
    journal_entry t url entry
  end

let forget t ~url =
  match Hashtbl.find_opt t.entries url with
  | Some entry ->
      entry.live <- false;
      journal_entry t url entry
  | None -> ()

let clamp t entry =
  entry.refresh_period <-
    Float.min entry.ceiling
      (Float.max t.min_period (Float.min t.max_period entry.refresh_period))

let boost t ~url ~period =
  add t ~url;
  let entry = Hashtbl.find t.entries url in
  if not entry.live then begin
    (* resurrect a forgotten URL: a subscription re-demands it *)
    entry.live <- true;
    Obs.Counter.incr t.metrics.resurrected
  end;
  (* Boosts only tighten: the ceiling is the strongest demand among
     the live subscriptions, whatever order they were applied in.
     Relaxation (a subscription leaving) goes through [reset_ceiling]
     followed by re-applying the survivors' statements. *)
  entry.ceiling <- Float.max t.min_period (Float.min entry.ceiling period);
  clamp t entry;
  Obs.Counter.incr t.metrics.boosts;
  let target = Xy_util.Clock.now t.clock +. entry.refresh_period in
  if not entry.queued then begin
    (* nothing pending (served then forgotten): schedule anew *)
    entry.queued <- true;
    entry.deadline <- target;
    Schedule.add t.schedule ~at:target url;
    update_depth t
  end
  else if target < entry.deadline then begin
    (* The clamped period shortens the pending deadline: supersede the
       possibly weeks-away heap entry.  The old entry is deleted
       lazily — [pop_due] skips entries whose time no longer matches
       the authoritative [deadline]. *)
    entry.deadline <- target;
    Schedule.add t.schedule ~at:target url;
    update_depth t
  end;
  journal_entry t url entry

let pop_due t ~limit =
  let now = Xy_util.Clock.now t.clock in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Schedule.peek_time t.schedule with
      | Some at when at <= now -> (
          match Schedule.pop_next t.schedule with
          | None -> List.rev acc
          | Some (at, url) -> (
              match Hashtbl.find_opt t.entries url with
              | Some entry when not entry.queued ->
                  (* stale: already served this cycle *)
                  go acc n
              | Some entry when at <> entry.deadline ->
                  (* stale: superseded by a boost reschedule *)
                  go acc n
              | Some entry when entry.live ->
                  entry.queued <- false;
                  Obs.Counter.incr t.metrics.served;
                  journal_entry t url entry;
                  go (url :: acc) (n - 1)
              | Some _ ->
                  (* dead entry drained from the heap *)
                  Hashtbl.remove t.entries url;
                  journal_removal t url;
                  go acc n
              | None -> go acc n))
      | Some _ | None -> List.rev acc
  in
  let served = go [] limit in
  update_depth t;
  (* Deterministic batch order: the heap breaks deadline ties by
     insertion history, which a rebuilt (restored) heap does not
     share.  Sorting by (deadline, url) makes the processing order a
     pure function of queue *state*, so a warm restart refetches
     in-flight documents in exactly the order the crashed run would
     have processed them. *)
  List.sort
    (fun a b ->
      let da = (Hashtbl.find t.entries a).deadline
      and db = (Hashtbl.find t.entries b).deadline in
      match Float.compare da db with 0 -> String.compare a b | c -> c)
    served

(* A fetch that failed after [pop_due] left its entry dequeued
   ([queued = false]) with nothing pending in the heap: without an
   explicit requeue the URL would only ever come back through a
   subscription boost.  [retry] puts the in-flight URL back at
   [now + delay] leaving its refresh period untouched. *)
let retry t ~url ~delay =
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry when entry.live && not entry.queued ->
      entry.queued <- true;
      let at = Xy_util.Clock.now t.clock +. Float.max 0. delay in
      entry.deadline <- at;
      Schedule.add t.schedule ~at url;
      Obs.Counter.incr t.metrics.retried;
      update_depth t;
      journal_entry t url entry
  | Some _ -> ()

(* Retry exhaustion: the URL is kept — losing it would break the
   "loses no subscriptions" contract — but demoted in importance: its
   refresh period is multiplied by [factor] (clamped; a subscription
   boost ceiling still wins, those pages are demanded regardless of
   flakiness) and the next attempt is scheduled a full period away. *)
let penalize t ~url ~factor =
  if factor < 1. then invalid_arg "Fetch_queue.penalize: factor < 1";
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry when entry.live && not entry.queued ->
      entry.refresh_period <- entry.refresh_period *. factor;
      clamp t entry;
      entry.queued <- true;
      let at = Xy_util.Clock.now t.clock +. entry.refresh_period in
      entry.deadline <- at;
      Schedule.add t.schedule ~at url;
      Obs.Counter.incr t.metrics.demoted;
      update_depth t;
      journal_entry t url entry
  | Some entry ->
      (* Not in flight (e.g. already rescheduled by a boost): still
         demote the period so the offender is fetched less often. *)
      if entry.live then begin
        entry.refresh_period <- entry.refresh_period *. factor;
        clamp t entry;
        Obs.Counter.incr t.metrics.demoted;
        journal_entry t url entry
      end

let mark_fetched t ~url ~changed =
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry ->
      if entry.live && not entry.queued then begin
        entry.refresh_period <-
          (if changed then entry.refresh_period *. 0.5
           else entry.refresh_period *. 1.5);
        clamp t entry;
        entry.queued <- true;
        let at = Xy_util.Clock.now t.clock +. entry.refresh_period in
        entry.deadline <- at;
        Schedule.add t.schedule ~at url;
        update_depth t;
        journal_entry t url entry
      end

let next_deadline t = Schedule.peek_time t.schedule

let period t ~url =
  Option.map (fun e -> e.refresh_period) (Hashtbl.find_opt t.entries url)

let known_count t =
  Hashtbl.fold (fun _ e acc -> if e.live then acc + 1 else acc) t.entries 0

(* Unsubscribe support: the boost ceiling a subscription's refresh
   statement imposed must not outlive the subscription.  [reset_ceiling]
   lifts the ceiling back to [max_period]; the caller then re-applies
   the refresh statements of the remaining subscriptions. *)
let reset_ceiling t ~url =
  match Hashtbl.find_opt t.entries url with
  | None -> ()
  | Some entry ->
      entry.ceiling <- t.max_period;
      clamp t entry;
      journal_entry t url entry

type view = {
  v_url : string;
  v_period : float;
  v_ceiling : float;
  v_live : bool;
  v_queued : bool;
  v_deadline : float;
}

let view t =
  List.sort compare
    (Hashtbl.fold
       (fun url e acc ->
         {
           v_url = url;
           v_period = e.refresh_period;
           v_ceiling = e.ceiling;
           v_live = e.live;
           v_queued = e.queued;
           v_deadline = e.deadline;
         }
         :: acc)
       t.entries [])

(* {2 Durability} *)

let encode_snapshot t =
  let buf = Buffer.create 1024 in
  let entries =
    List.sort compare
      (Hashtbl.fold (fun url e acc -> (url, e) :: acc) t.entries [])
  in
  Codec.list buf
    (fun buf (url, e) -> Buffer.add_string buf (encode_entry url e))
    entries;
  Buffer.contents buf

let apply_encoded t reader =
  let url = Codec.read_string reader in
  if not (Codec.read_bool reader) then Hashtbl.remove t.entries url
  else begin
    let refresh_period = Codec.read_float reader in
    let ceiling = Codec.read_float reader in
    let live = Codec.read_bool reader in
    let queued = Codec.read_bool reader in
    let deadline = Codec.read_float reader in
    (match Hashtbl.find_opt t.entries url with
    | Some e ->
        e.refresh_period <- refresh_period;
        e.ceiling <- ceiling;
        e.live <- live;
        e.queued <- queued;
        e.deadline <- deadline
    | None ->
        Hashtbl.replace t.entries url
          { refresh_period; ceiling; live; queued; deadline });
    (* Keep the heap consistent: a queued entry needs a heap slot at
       its deadline.  Duplicates are harmless — [pop_due] skips slots
       whose time differs from the authoritative [deadline]. *)
    if queued then Schedule.add t.schedule ~at:deadline url
  end;
  update_depth t

let decode_snapshot t payload =
  Hashtbl.reset t.entries;
  t.schedule <- Schedule.create ();
  let reader = Codec.reader payload in
  ignore (Codec.read_list reader (fun r -> apply_encoded t r));
  Codec.expect_end reader

let apply_op t payload =
  let reader = Codec.reader payload in
  apply_encoded t reader;
  Codec.expect_end reader

(* After a crash, entries that were popped but never concluded
   ([live] and not [queued]) were in flight: put them back at their
   original deadline so the resumed run refetches them. *)
let rearm_in_flight t =
  let rearmed = ref 0 in
  Hashtbl.iter
    (fun url entry ->
      if entry.live && not entry.queued then begin
        entry.queued <- true;
        Schedule.add t.schedule ~at:entry.deadline url;
        journal_entry t url entry;
        incr rearmed
      end)
    t.entries;
  update_depth t;
  !rearmed
