type fetch = {
  url : string;
  content : string option;
  kind : Synthetic_web.kind option;
}

type t = {
  web : Synthetic_web.t;
  queue : Fetch_queue.t;
  mutable fetches : int;
}

let create ~web ~queue = { web; queue; fetches = 0 }

let discover t =
  List.iter (fun url -> Fetch_queue.add t.queue ~url) (Synthetic_web.urls t.web)

let step t ~limit =
  let due = Fetch_queue.pop_due t.queue ~limit in
  List.map
    (fun url ->
      t.fetches <- t.fetches + 1;
      let content = Synthetic_web.fetch t.web ~url in
      if content = None then Fetch_queue.forget t.queue ~url;
      { url; content; kind = Synthetic_web.kind_of t.web ~url })
    due

let conclude t ~url ~changed = Fetch_queue.mark_fetched t.queue ~url ~changed
let fetches t = t.fetches
