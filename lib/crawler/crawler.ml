module Obs = Xy_obs.Obs

type fetch = {
  url : string;
  content : string option;
  kind : Synthetic_web.kind option;
  trace : Xy_trace.Trace.ctx option;
}

type metrics = {
  fetched : Obs.Counter.t;
  missing : Obs.Counter.t;
  changed : Obs.Counter.t;
  unchanged : Obs.Counter.t;
  fetch_latency : Obs.Histogram.t;
}

type t = {
  web : Synthetic_web.t;
  queue : Fetch_queue.t;
  tracer : Xy_trace.Trace.t option;
  mutable fetches : int;
  metrics : metrics;
}

let stage = "crawler"

let create ?(obs = Obs.default) ?tracer ~web ~queue () =
  {
    web;
    queue;
    tracer;
    fetches = 0;
    metrics =
      {
        fetched = Obs.counter obs ~stage "fetches";
        missing = Obs.counter obs ~stage "missing";
        changed = Obs.counter obs ~stage "changed";
        unchanged = Obs.counter obs ~stage "unchanged";
        fetch_latency = Obs.histogram obs ~stage "fetch_latency";
      };
  }

let discover t =
  List.iter (fun url -> Fetch_queue.add t.queue ~url) (Synthetic_web.urls t.web)

let step t ~limit =
  let due = Fetch_queue.pop_due t.queue ~limit in
  List.map
    (fun url ->
      t.fetches <- t.fetches + 1;
      Obs.Counter.incr t.metrics.fetched;
      (* The sampling decision for the whole pipeline happens here, at
         fetch time; the context then rides the fetch downstream. *)
      let trace =
        Option.bind t.tracer (fun tracer -> Xy_trace.Trace.start tracer ~root:url)
      in
      let content =
        Xy_trace.Trace.wrap trace ~stage ~name:"fetch" ~attrs:[ ("url", url) ]
        @@ fun () ->
        Obs.Histogram.time t.metrics.fetch_latency (fun () ->
            Synthetic_web.fetch t.web ~url)
      in
      if content = None then begin
        Obs.Counter.incr t.metrics.missing;
        Fetch_queue.forget t.queue ~url
      end;
      { url; content; kind = Synthetic_web.kind_of t.web ~url; trace })
    due

let conclude t ~url ~changed =
  Obs.Counter.incr
    (if changed then t.metrics.changed else t.metrics.unchanged);
  Fetch_queue.mark_fetched t.queue ~url ~changed

let fetches t = t.fetches
