module Obs = Xy_obs.Obs
module Fault = Xy_fault.Fault

type fetch = {
  url : string;
  content : string option;
  kind : Synthetic_web.kind option;
  trace : Xy_trace.Trace.ctx option;
  birth : float option;
}

type retry_policy = {
  max_retries : int;
  backoff : float;
  backoff_factor : float;
  jitter : float;
  demote_factor : float;
  site_threshold : int;
}

let default_retry =
  {
    max_retries = 3;
    backoff = 300.;
    backoff_factor = 2.;
    jitter = 0.5;
    demote_factor = 2.;
    site_threshold = 10;
  }

type metrics = {
  fetched : Obs.Counter.t;
  missing : Obs.Counter.t;
  changed : Obs.Counter.t;
  unchanged : Obs.Counter.t;
  fetch_latency : Obs.Histogram.t;
  detection_lag : Obs.Histogram.t;
      (** virtual seconds from a change's birth to the fetch that
          observed it *)
  watermark_age : Obs.Gauge.t;
      (** age (virtual seconds) of the oldest change no fetch has
          observed yet; [0] when fully current *)
  watermark_pending : Obs.Gauge.t;
      (** pages currently holding an unobserved change *)
}

(* Robustness accounting lives under the [fault] stage, next to the
   injection counters, so one snapshot shows cause and response
   side by side. *)
type fault_metrics = {
  f_failures : Obs.Counter.t;
  f_retries : Obs.Counter.t;
  f_exhausted : Obs.Counter.t;
  f_requeued : Obs.Counter.t;
  f_flagged_sites : Obs.Gauge.t;
}

type t = {
  web : Synthetic_web.t;
  queue : Fetch_queue.t;
  clock : Xy_util.Clock.t option;
  tracer : Xy_trace.Trace.t option;
  faults : Fault.t;
  retry : retry_policy;
  attempts : (string, int) Hashtbl.t;  (** url -> consecutive failures *)
  site_failures : (string, int) Hashtbl.t;
  mutable fetches : int;
  metrics : metrics;
  fault_metrics : fault_metrics;
  mutable journal : (string -> unit) option;
}

let stage = "crawler"
let fault_stage = "fault"

let create ?(obs = Obs.default) ?clock ?tracer ?(faults = Fault.none)
    ?(retry = default_retry) ~web ~queue () =
  {
    web;
    queue;
    clock;
    tracer;
    faults;
    retry;
    attempts = Hashtbl.create 64;
    site_failures = Hashtbl.create 16;
    fetches = 0;
    metrics =
      {
        fetched = Obs.counter obs ~stage "fetches";
        missing = Obs.counter obs ~stage "missing";
        changed = Obs.counter obs ~stage "changed";
        unchanged = Obs.counter obs ~stage "unchanged";
        fetch_latency = Obs.histogram obs ~stage "fetch_latency";
        detection_lag =
          Obs.histogram obs ~stage "detection_lag"
            ~buckets:Obs.staleness_buckets;
        watermark_age = Obs.gauge obs ~stage "staleness_watermark_age";
        watermark_pending = Obs.gauge obs ~stage "staleness_pending_changes";
      };
    fault_metrics =
      {
        f_failures = Obs.counter obs ~stage:fault_stage "fetch_failures";
        f_retries = Obs.counter obs ~stage:fault_stage "fetch_retries";
        f_exhausted = Obs.counter obs ~stage:fault_stage "retry_exhausted";
        f_requeued = Obs.counter obs ~stage:fault_stage "requeued_demoted";
        f_flagged_sites = Obs.gauge obs ~stage:fault_stage "flagged_sites";
      };
    journal = None;
  }

(* Durability: the retry bookkeeping (per-URL attempt counts, per-site
   failure tallies, the fetch counter) journals each mutation's
   post-state; replay upserts. *)
module Codec = Xy_util.Codec

let set_journal t emit = t.journal <- emit

let emit_op t encode =
  match t.journal with
  | None -> ()
  | Some emit ->
      let buf = Buffer.create 48 in
      encode buf;
      emit (Buffer.contents buf)

(* key -> count post-states; count 0 means removed *)
let journal_attempt t url =
  emit_op t (fun buf ->
      Codec.string buf "a";
      Codec.string buf url;
      Codec.int buf (Option.value ~default:0 (Hashtbl.find_opt t.attempts url)))

let journal_site t site =
  emit_op t (fun buf ->
      Codec.string buf "s";
      Codec.string buf site;
      Codec.int buf
        (Option.value ~default:0 (Hashtbl.find_opt t.site_failures site)))

let journal_fetches t =
  emit_op t (fun buf ->
      Codec.string buf "f";
      Codec.int buf t.fetches)

let discover t =
  List.iter (fun url -> Fetch_queue.add t.queue ~url) (Synthetic_web.urls t.web)

(* "http://site3.example.org/page7.xml" -> "http://site3.example.org" *)
let site_of url =
  match String.index_opt url ':' with
  | Some i
    when i + 2 < String.length url && url.[i + 1] = '/' && url.[i + 2] = '/' -> (
      match String.index_from_opt url (i + 3) '/' with
      | Some j -> String.sub url 0 j
      | None -> url)
  | _ -> url

let site_failures t ~url =
  Option.value ~default:0 (Hashtbl.find_opt t.site_failures (site_of url))

let flagged_sites t =
  Hashtbl.fold
    (fun _ failures acc -> if failures >= t.retry.site_threshold then acc + 1 else acc)
    t.site_failures 0

let pending_retries t = Hashtbl.length t.attempts

(* {2 Staleness accounting} — lags are measured on the virtual axis:
   the system clock when one was bound, else the web's own [vnow]
   (they advance in lockstep; the fallback serves clockless tests). *)

let virtual_now t =
  match t.clock with
  | Some clock -> Xy_util.Clock.now clock
  | None -> Synthetic_web.vnow t.web

let observe_detection t ~url =
  match Synthetic_web.take_change_birth t.web ~url with
  | None -> None
  | Some birth ->
      Obs.Histogram.observe t.metrics.detection_lag
        (Float.max 0. (virtual_now t -. birth));
      Some birth

let update_watermark t =
  let now = virtual_now t in
  let age =
    match Synthetic_web.oldest_pending t.web with
    | None -> 0.
    | Some birth -> Float.max 0. (now -. birth)
  in
  Obs.Gauge.set t.metrics.watermark_age age;
  Obs.Gauge.set_int t.metrics.watermark_pending
    (Synthetic_web.pending_changes t.web)

(* Deterministic content mangling: cut the document somewhere and
   append bytes no XML parser can accept (unclosed tag, bad entity
   reference, stray "]]>"). *)
let mangle t content =
  let n = String.length content in
  let cut = if n = 0 then 0 else 1 + Fault.draw_int t.faults "malformed" ~bound:n in
  String.sub content 0 (min cut n) ^ "<&malformed]]>"

(* One transient fetch failure: bounded retry with exponential backoff
   and jitter; a site whose failures pile up past the threshold gets
   its backoff doubled again (repeat offenders wait longer); on
   exhaustion the URL is requeued at demoted importance — never
   dropped. *)
let handle_failure t ~url =
  Obs.Counter.incr t.fault_metrics.f_failures;
  let site = site_of url in
  let site_count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.site_failures site) in
  Hashtbl.replace t.site_failures site site_count;
  journal_site t site;
  Obs.Gauge.set_int t.fault_metrics.f_flagged_sites (flagged_sites t);
  let attempt = 1 + Option.value ~default:0 (Hashtbl.find_opt t.attempts url) in
  if attempt <= t.retry.max_retries then begin
    Hashtbl.replace t.attempts url attempt;
    journal_attempt t url;
    Obs.Counter.incr t.fault_metrics.f_retries;
    let base =
      t.retry.backoff *. Float.pow t.retry.backoff_factor (float_of_int (attempt - 1))
    in
    let offender_scale =
      if site_count >= t.retry.site_threshold then 2. else 1.
    in
    let jitter = base *. t.retry.jitter *. Fault.draw_float t.faults "fetch" in
    Fetch_queue.retry t.queue ~url ~delay:((base *. offender_scale) +. jitter)
  end
  else begin
    Hashtbl.remove t.attempts url;
    journal_attempt t url;
    Obs.Counter.incr t.fault_metrics.f_exhausted;
    Obs.Counter.incr t.fault_metrics.f_requeued;
    Fetch_queue.penalize t.queue ~url ~factor:t.retry.demote_factor
  end

let handle_success t ~url =
  if Hashtbl.mem t.attempts url then begin
    Hashtbl.remove t.attempts url;
    journal_attempt t url
  end;
  let site = site_of url in
  match Hashtbl.find_opt t.site_failures site with
  | Some n ->
      if n > 1 then Hashtbl.replace t.site_failures site (n - 1)
      else Hashtbl.remove t.site_failures site;
      journal_site t site;
      Obs.Gauge.set_int t.fault_metrics.f_flagged_sites (flagged_sites t)
  | None -> ()

let fetch_one t ~url =
  (* The failure draw precedes the fetch: a transient fault costs
     no synthetic-web access and emits no fetch record — the URL
     re-enters the schedule through the retry path instead. *)
  if Fault.fire t.faults "fetch" then begin
    handle_failure t ~url;
    None
  end
  else begin
    t.fetches <- t.fetches + 1;
    journal_fetches t;
    Obs.Counter.incr t.metrics.fetched;
    (* The sampling decision for the whole pipeline happens here, at
       fetch time; the context then rides the fetch downstream. *)
    let trace =
      Option.bind t.tracer (fun tracer -> Xy_trace.Trace.start tracer ~root:url)
    in
    let content =
      Xy_trace.Trace.wrap trace ~stage ~name:"fetch" ~attrs:[ ("url", url) ]
      @@ fun () ->
      Obs.Histogram.time t.metrics.fetch_latency (fun () ->
          Synthetic_web.fetch t.web ~url)
    in
    let birth =
      match content with
      | None ->
          Obs.Counter.incr t.metrics.missing;
          Fetch_queue.forget t.queue ~url;
          None
      | Some _ ->
          handle_success t ~url;
          (* the fetched body carries any pending change: record its
             detection lag and let the birth ride the fetch downstream
             so the reporter can measure notification lag *)
          observe_detection t ~url
    in
    let content =
      match content with
      | Some body when Fault.fire t.faults "malformed" -> Some (mangle t body)
      | other -> other
    in
    Some { url; content; kind = Synthetic_web.kind_of t.web ~url; trace; birth }
  end

let step t ~limit =
  let due = Fetch_queue.pop_due t.queue ~limit in
  List.filter_map (fun url -> fetch_one t ~url) due

let conclude t ~url ~changed =
  Obs.Counter.incr
    (if changed then t.metrics.changed else t.metrics.unchanged);
  Fetch_queue.mark_fetched t.queue ~url ~changed

let fetches t = t.fetches

(* {2 Durability} *)

let encode_snapshot t =
  let buf = Buffer.create 256 in
  let sorted table =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  let pair buf (k, v) =
    Codec.string buf k;
    Codec.int buf v
  in
  Codec.list buf pair (sorted t.attempts);
  Codec.list buf pair (sorted t.site_failures);
  Codec.int buf t.fetches;
  Buffer.contents buf

let decode_snapshot t payload =
  let reader = Codec.reader payload in
  let pair r =
    let k = Codec.read_string r in
    let v = Codec.read_int r in
    (k, v)
  in
  let attempts = Codec.read_list reader pair in
  let sites = Codec.read_list reader pair in
  let fetches = Codec.read_int reader in
  Codec.expect_end reader;
  Hashtbl.reset t.attempts;
  List.iter (fun (k, v) -> Hashtbl.replace t.attempts k v) attempts;
  Hashtbl.reset t.site_failures;
  List.iter (fun (k, v) -> Hashtbl.replace t.site_failures k v) sites;
  t.fetches <- fetches;
  Obs.Gauge.set_int t.fault_metrics.f_flagged_sites (flagged_sites t)

let apply_op t payload =
  let reader = Codec.reader payload in
  (match Codec.read_string reader with
  | "a" ->
      let url = Codec.read_string reader in
      let n = Codec.read_int reader in
      if n = 0 then Hashtbl.remove t.attempts url
      else Hashtbl.replace t.attempts url n
  | "s" ->
      let site = Codec.read_string reader in
      let n = Codec.read_int reader in
      if n = 0 then Hashtbl.remove t.site_failures site
      else Hashtbl.replace t.site_failures site n
  | "f" -> t.fetches <- Codec.read_int reader
  | tag -> raise (Codec.Malformed ("unknown crawler op " ^ tag)));
  Codec.expect_end reader
