(** A synthetic web.

    The paper's system crawls the real web; this module generates a
    deterministic substitute: sites hosting XML catalogs (with shared
    DTDs), member lists, museum pages and HTML pages, all of which
    *evolve* over virtual time — elements are inserted, updated and
    deleted, pages appear and disappear — exercising exactly the code
    paths the live crawl would (fetch → signature → diff → events). *)

type kind = Xml_page | Html_page

type page = {
  url : string;
  kind : kind;
  mutable content : string;
  change_rate : float;  (** expected content changes per (virtual) day *)
  mutable changed_at : float option;
      (** virtual birth time of the oldest content change not yet
          observed by the crawler; [None] when the crawler is current *)
}

type t

(** [generate ~seed ~sites ~pages_per_site ()] builds the web.  Page
    change rates follow a Zipf-like skew: a few hot pages change
    often, most rarely. *)
val generate : ?seed:int -> sites:int -> pages_per_site:int -> unit -> t

val urls : t -> string list
val page_count : t -> int

(** [fetch t ~url] is the current content, or [None] if the page
    disappeared. *)
val fetch : t -> url:string -> string option

val kind_of : t -> url:string -> kind option

(** [evolve t ~elapsed] advances the web by [elapsed] virtual seconds:
    each page mutates with probability [1 - exp (-rate * days)];
    occasionally pages are created or deleted.  Returns the number of
    pages that changed. *)
val evolve : t -> elapsed:float -> int

(** {2 Staleness accounting} — every real content change (evolution,
    forced mutation, page birth mid-run) stamps the page with the
    web's virtual clock.  The stamp names the *oldest* unobserved
    change and survives until the crawler reads it back, so birth →
    fetch is the change's detection lag. *)

(** [vnow t] is the web's virtual clock: the sum of all [evolve]
    elapsed times (advanced in lockstep with the system clock). *)
val vnow : t -> float

(** [take_change_birth t ~url] reads and clears the page's pending
    change stamp — the crawler calls it on each successful fetch.
    [None]: the page has not changed since the last fetch. *)
val take_change_birth : t -> url:string -> float option

(** [oldest_pending t] is the birth time of the oldest change no fetch
    has observed yet, across all pages ([None] when the crawler is
    fully current) — the freshness watermark. *)
val oldest_pending : t -> float option

(** [pending_changes t] counts pages holding an unobserved change. *)
val pending_changes : t -> int

(** [mutate t ~url] forces one content mutation (tests). *)
val mutate : t -> url:string -> unit

(** [remove t ~url] deletes a page. *)
val remove : t -> url:string -> unit

(** [add_catalog_product t ~url ~name ~words] appends a product
    element to a catalog page (tests drive precise element-level
    changes with it). *)
val add_catalog_product : t -> url:string -> name:string -> words:string -> unit

(** {2 Durability} — the synthetic web is simulation state: a durable
    snapshot captures pages, creation order and the exact PRNG stream
    position, so a restored web replays journaled {!evolve} calls
    identically to the uninterrupted run. *)

val encode_snapshot : t -> string

(** Replaces the web's pages and stream wholesale.  Raises
    {!Xy_util.Codec.Malformed} on damage. *)
val decode_snapshot : t -> string -> unit
