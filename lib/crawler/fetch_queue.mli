(** Acquisition & refresh scheduling (paper §2.1, citing [19]).

    "Its task is to decide when to (re)read an XML or HTML document.
    This decision is based on criteria such as the importance of a
    document, its estimated change rate or subscriptions involving
    this particular document."

    Each known URL carries a refresh period, adapted multiplicatively:
    a fetch that found a change shortens the period, an unchanged
    fetch lengthens it.  Subscription refresh statements put a ceiling
    on the period ("such pages will be read more often"). *)

type t

(** [create ~clock ()] — new URLs start with [initial_period]
    (default one day), bounded by [min_period]/[max_period]
    (defaults: one hour / four weeks). *)
val create :
  ?initial_period:float ->
  ?min_period:float ->
  ?max_period:float ->
  clock:Xy_util.Clock.t ->
  unit ->
  t

(** [add t ~url] registers a URL for crawling (first fetch due
    immediately).  Idempotent. *)
val add : t -> url:string -> unit

(** [forget t ~url] drops a URL (page gone). *)
val forget : t -> url:string -> unit

(** [boost t ~url ~period] applies a subscription refresh statement:
    the URL's refresh period will never exceed [period]. *)
val boost : t -> url:string -> period:float -> unit

(** [pop_due t ~limit] returns up to [limit] URLs whose fetch deadline
    passed, earliest first.  The caller must conclude each with
    {!mark_fetched} to reschedule. *)
val pop_due : t -> limit:int -> string list

(** [mark_fetched t ~url ~changed] adapts the period (shorter when
    the fetch found a change) and schedules the next fetch. *)
val mark_fetched : t -> url:string -> changed:bool -> unit

(** [next_deadline t] is the earliest pending fetch time. *)
val next_deadline : t -> float option

(** [period t ~url] is the current refresh period (tests). *)
val period : t -> url:string -> float option

val known_count : t -> int
