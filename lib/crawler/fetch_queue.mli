(** Acquisition & refresh scheduling (paper §2.1, citing [19]).

    "Its task is to decide when to (re)read an XML or HTML document.
    This decision is based on criteria such as the importance of a
    document, its estimated change rate or subscriptions involving
    this particular document."

    Each known URL carries a refresh period, adapted multiplicatively:
    a fetch that found a change shortens the period, an unchanged
    fetch lengthens it.  Subscription refresh statements put a ceiling
    on the period ("such pages will be read more often"). *)

type t

(** [create ~clock ()] — new URLs start with [initial_period]
    (default one day), bounded by [min_period]/[max_period]
    (defaults: one hour / four weeks).  Queue metrics are registered
    under the [crawler] stage of [obs] (default
    {!Xy_obs.Obs.default}). *)
val create :
  ?initial_period:float ->
  ?min_period:float ->
  ?max_period:float ->
  ?obs:Xy_obs.Obs.t ->
  clock:Xy_util.Clock.t ->
  unit ->
  t

(** [add t ~url] registers a URL for crawling (first fetch due
    immediately).  Idempotent. *)
val add : t -> url:string -> unit

(** [forget t ~url] drops a URL (page gone). *)
val forget : t -> url:string -> unit

(** [boost t ~url ~period] applies a subscription refresh statement:
    the URL's refresh period will never exceed [period].  Boosts only
    tighten the ceiling — applying several subscriptions' statements
    in any order leaves the strongest demand in force; relaxation
    (when a subscription leaves) is {!reset_ceiling} followed by
    re-applying the survivors' statements.  A forgotten
    URL is resurrected ("subscriptions involving this particular
    document" re-demand it), and when the clamped period brings the
    next fetch closer than the currently scheduled deadline, the
    fetch is rescheduled to [now + period] — without this, a boost
    from the four-week default down to one hour would only take
    effect after the old, possibly weeks-away deadline fired. *)
val boost : t -> url:string -> period:float -> unit

(** [pop_due t ~limit] returns up to [limit] URLs whose fetch deadline
    passed, earliest first (deadline ties broken by URL, so the batch
    order is a pure function of queue state — what warm-restart
    refetch equivalence needs).  The caller must conclude each with
    {!mark_fetched} (success), {!retry} (transient failure) or
    {!penalize} (retries exhausted) to reschedule — a popped URL left
    unconcluded only comes back through a subscription {!boost} or a
    restore's {!rearm_in_flight}. *)
val pop_due : t -> limit:int -> string list

(** [retry t ~url ~delay] re-enqueues an in-flight URL (popped, fetch
    failed transiently) at [now + delay], leaving its refresh period
    untouched.  No-op for unknown, dead or already-queued URLs. *)
val retry : t -> url:string -> delay:float -> unit

(** [penalize t ~url ~factor] concludes a fetch whose retries were
    exhausted: the URL is *kept* but demoted — its refresh period is
    multiplied by [factor >= 1] (clamped to the usual bounds; a
    subscription boost ceiling still caps it) and the next attempt is
    scheduled one full period away.  Raises [Invalid_argument] when
    [factor < 1]. *)
val penalize : t -> url:string -> factor:float -> unit

(** [mark_fetched t ~url ~changed] adapts the period (shorter when
    the fetch found a change) and schedules the next fetch. *)
val mark_fetched : t -> url:string -> changed:bool -> unit

(** [next_deadline t] is the earliest pending fetch time. *)
val next_deadline : t -> float option

(** [period t ~url] is the current refresh period (tests). *)
val period : t -> url:string -> float option

val known_count : t -> int

(** [clock t] is the virtual clock the queue schedules against. *)
val clock : t -> Xy_util.Clock.t

(** [reset_ceiling t ~url] lifts a subscription boost ceiling back to
    the queue's [max_period] — called when the last subscription
    demanding [url] is deleted, before the survivors' refresh
    statements are re-applied.  The refresh period may then grow
    naturally again. *)
val reset_ceiling : t -> url:string -> unit

(** A read-only copy of one entry's state (tests, state diffing). *)
type view = {
  v_url : string;
  v_period : float;
  v_ceiling : float;
  v_live : bool;
  v_queued : bool;
  v_deadline : float;
}

(** [view t] is every known entry, sorted by URL. *)
val view : t -> view list

(** {2 Durability}

    Every mutation journals the entry's post-state; replay upserts
    entries and re-adds heap slots for queued ones (duplicates are
    skipped by {!pop_due}'s staleness checks). *)

(** [set_journal t (Some emit)] calls [emit payload] with an encoded
    entry post-state after every mutation. *)
val set_journal : t -> (string -> unit) option -> unit

val encode_snapshot : t -> string

(** [decode_snapshot t payload] replaces the queue's entries and heap
    wholesale.  Raises {!Xy_util.Codec.Malformed} on damage. *)
val decode_snapshot : t -> string -> unit

(** [apply_op t payload] applies one journaled entry post-state. *)
val apply_op : t -> string -> unit

(** [rearm_in_flight t] requeues entries that were popped but never
    concluded (a crash caught their fetch in flight) at their original
    deadline; returns how many. *)
val rearm_in_flight : t -> int
