(** Acquisition & refresh scheduling (paper §2.1, citing [19]).

    "Its task is to decide when to (re)read an XML or HTML document.
    This decision is based on criteria such as the importance of a
    document, its estimated change rate or subscriptions involving
    this particular document."

    Each known URL carries a refresh period, adapted multiplicatively:
    a fetch that found a change shortens the period, an unchanged
    fetch lengthens it.  Subscription refresh statements put a ceiling
    on the period ("such pages will be read more often"). *)

type t

(** [create ~clock ()] — new URLs start with [initial_period]
    (default one day), bounded by [min_period]/[max_period]
    (defaults: one hour / four weeks).  Queue metrics are registered
    under the [crawler] stage of [obs] (default
    {!Xy_obs.Obs.default}). *)
val create :
  ?initial_period:float ->
  ?min_period:float ->
  ?max_period:float ->
  ?obs:Xy_obs.Obs.t ->
  clock:Xy_util.Clock.t ->
  unit ->
  t

(** [add t ~url] registers a URL for crawling (first fetch due
    immediately).  Idempotent. *)
val add : t -> url:string -> unit

(** [forget t ~url] drops a URL (page gone). *)
val forget : t -> url:string -> unit

(** [boost t ~url ~period] applies a subscription refresh statement:
    the URL's refresh period will never exceed [period].  A forgotten
    URL is resurrected ("subscriptions involving this particular
    document" re-demand it), and when the clamped period brings the
    next fetch closer than the currently scheduled deadline, the
    fetch is rescheduled to [now + period] — without this, a boost
    from the four-week default down to one hour would only take
    effect after the old, possibly weeks-away deadline fired. *)
val boost : t -> url:string -> period:float -> unit

(** [pop_due t ~limit] returns up to [limit] URLs whose fetch deadline
    passed, earliest first.  The caller must conclude each with
    {!mark_fetched} (success), {!retry} (transient failure) or
    {!penalize} (retries exhausted) to reschedule — a popped URL left
    unconcluded only comes back through a subscription {!boost}. *)
val pop_due : t -> limit:int -> string list

(** [retry t ~url ~delay] re-enqueues an in-flight URL (popped, fetch
    failed transiently) at [now + delay], leaving its refresh period
    untouched.  No-op for unknown, dead or already-queued URLs. *)
val retry : t -> url:string -> delay:float -> unit

(** [penalize t ~url ~factor] concludes a fetch whose retries were
    exhausted: the URL is *kept* but demoted — its refresh period is
    multiplied by [factor >= 1] (clamped to the usual bounds; a
    subscription boost ceiling still caps it) and the next attempt is
    scheduled one full period away.  Raises [Invalid_argument] when
    [factor < 1]. *)
val penalize : t -> url:string -> factor:float -> unit

(** [mark_fetched t ~url ~changed] adapts the period (shorter when
    the fetch found a change) and schedules the next fetch. *)
val mark_fetched : t -> url:string -> changed:bool -> unit

(** [next_deadline t] is the earliest pending fetch time. *)
val next_deadline : t -> float option

(** [period t ~url] is the current refresh period (tests). *)
val period : t -> url:string -> float option

val known_count : t -> int

(** [clock t] is the virtual clock the queue schedules against. *)
val clock : t -> Xy_util.Clock.t
