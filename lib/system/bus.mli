(** Inter-module message queues.

    The paper's modules run on a cluster and communicate through Corba
    (§2.1); here the same dataflow decoupling is provided by bounded
    blocking queues safe across OCaml domains, so the pipeline stages
    of {!Distributed} can run on separate cores with the same
    producer/consumer contract a remote transport would give. *)

type 'a t

(** [create ~capacity ()] — producers block when [capacity] messages
    are in flight (backpressure, default 1024).  Queue metrics
    ([name_pushed]/[name_popped] counters, [name_depth] gauge and a
    [name_blocked] backpressure-stall histogram) are registered under
    the [bus] stage of [obs] (default {!Xy_obs.Obs.default}); [name]
    defaults to ["bus"].

    [trace_of] extracts the trace context riding a message, if any:
    each traced message's queue wait (enqueue → dequeue wall time,
    measured across domains) is then recorded as a [bus/wait] span on
    its trace, attributed with the bus [name].

    [faults] (default {!Xy_fault.Fault.none}) arms two failure
    points on {!push}: [bus_stall] delays the push briefly (a slow
    transport hop) and [bus_drop] silently loses the message. *)
val create :
  ?capacity:int ->
  ?obs:Xy_obs.Obs.t ->
  ?name:string ->
  ?trace_of:('a -> Xy_trace.Trace.ctx option) ->
  ?faults:Xy_fault.Fault.t ->
  unit ->
  'a t

(** [push t message] blocks while the queue is full.  Raises
    [Invalid_argument] if the queue is closed. *)
val push : 'a t -> 'a -> unit

(** [pop t] blocks until a message is available; [None] once the
    queue is closed *and* drained. *)
val pop : 'a t -> 'a option

(** [try_pop t] — a message if one is immediately available, [None]
    otherwise (empty or closed); never blocks. *)
val try_pop : 'a t -> 'a option

(** [steal_half t] removes and returns the back half of the queue
    (⌈n/2⌉ messages, in order) in one locked sweep — the work-stealing
    primitive: the victim keeps the front half so its local order is
    preserved.  Empty list when fewer than 2 messages are queued.
    Stolen messages count as popped; their queue-wait trace spans are
    not recorded (they re-queue on the thief conceptually, but we hand
    them straight to its loop). *)
val steal_half : 'a t -> 'a list

(** [drained t] — closed and empty: no message will ever arrive. *)
val drained : 'a t -> bool

(** [close t] signals end-of-stream: producers may no longer push,
    consumers drain the remaining messages then receive [None].
    Idempotent. *)
val close : 'a t -> unit

(** [length t] is the current number of queued messages. *)
val length : 'a t -> int
