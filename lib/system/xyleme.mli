(** The assembled monitoring system (paper Figure 3).

    Wires crawler → loader → alerters → Monitoring Query Processor →
    {Reporter, Trigger Engine}, under one virtual clock, with the
    Subscription Manager controlling all of it.  This is the facade a
    downstream user programs against; the examples and the end-to-end
    benches are built on it. *)

type t

(** [monotonic_wall ()] is [Unix.gettimeofday] behind a
    compare-and-swap ratchet: it never retreats, even when NTP steps
    the wall clock backwards.  {!create} installs it as the xy_obs and
    xy_trace timer (whose built-in default, [Sys.time], measures CPU
    seconds and makes blocked I/O invisible). *)
val monotonic_wall : unit -> float

(** [create ()] wires a fresh registry into every stage: all pipeline
    metrics (crawler, warehouse, alerters, mqp, trigger, reporter,
    submgr, system) land in [obs] (a private {!Xy_obs.Obs.create}d
    registry by default — pass one to share it, e.g. with a {!Bus}).
    The {!monotonic_wall} timer is installed into xy_obs and xy_trace
    as a side effect.

    [tracer] carries per-document pipeline tracing (default: a fresh
    {!Xy_trace.Trace.create}d tracer with sampling disabled — enable
    with {!Xy_trace.Trace.set_sampling} on {!tracer}).  Its virtual
    clock is bound to this system's simulation clock.

    [self_monitor_period] (virtual seconds) makes {!advance} inject
    the {!Self_monitor} health documents periodically.

    [fault_plan] arms {!Xy_fault.Fault} failure points across the
    pipeline (fetch failures, malformed documents, torn persist
    writes, ...), seeded from [seed]: the same [(seed, fault_plan)]
    pair reproduces the exact same failure schedule, so a faulted run
    is as replayable as a clean one.  [retry] tunes the crawler's
    retry/backoff response to those failures
    ({!Xy_crawler.Crawler.retry_policy}, default
    {!Xy_crawler.Crawler.default_retry}).  Documents the loader
    rejects as unparseable (e.g. the [malformed] point fired) are
    quarantined: counted under [fault/quarantined], logged, and
    skipped — never fatal.

    [durable_dir] makes the whole system durable: the directory is
    (re)initialised ({!Xy_durable.Durable.open_fresh}), the
    subscription log lives inside it (overriding [persist_path]), and
    every state change is journaled to a write-ahead log so that
    {!restore} can warm-restart the system after a crash.  Checkpoint
    with {!checkpoint}; a durable system always carries a real fault
    injector so the [crash] point can be armed.

    [slos] arms freshness objectives ({!Xy_slo.Slo}): each {!advance}
    evaluates them against the live metrics, and an objective whose
    breached status flips gets an SLO document ingested at
    [xyleme://self/slo/<name>.xml] — subscriptions on that prefix do
    the actual alerting through the unmodified pipeline.

    [parallel] selects the sharded crawl → match → report pipeline
    ({!Parallel}): with [domains > 1], each crawl step's fetches fan
    out over that many loader domains and [shards] MQP shards along
    the chosen §4.2 [axis], with work stealing between skewed shards
    ([steal]) and per-stage backpressure ([capacity]).  The default
    ({!Parallel.default_config}) stays serial.  Either way the
    observable behaviour is identical — notifications, reports and
    journal ops come out in the serial order.

    [sync_every] sets the WAL group-commit batch size (transactions
    per fsync, default 32; [1] syncs every commit) and
    [segment_bytes] the WAL segment rotation threshold — both forwarded
    into {!Xy_durable.Durable.config}.

    [serve_port] opens the wire-protocol serving surface
    ({!Xy_serve.Serve}) on that TCP port (0 picks an ephemeral one,
    read it back via {!serve}): remote clients SUBSCRIBE/UNSUBSCRIBE,
    poll STATUS, and receive streamed report frames they acknowledge
    by delivery seq.  Deliveries tee into the wire path without
    disturbing [sink].  [serve_config] gives full control (host,
    backlog, per-client outbox window, frame-size cap) and wins over
    [serve_port]. *)
val create :
  ?seed:int ->
  ?algorithm:Xy_core.Mqp.algorithm ->
  ?policy:Xy_sublang.S_compile.policy ->
  ?persist_path:string ->
  ?sink:Xy_reporter.Sink.t ->
  ?web:Xy_crawler.Synthetic_web.t ->
  ?obs:Xy_obs.Obs.t ->
  ?tracer:Xy_trace.Trace.t ->
  ?self_monitor_period:float ->
  ?fault_plan:Xy_fault.Fault.spec ->
  ?retry:Xy_crawler.Crawler.retry_policy ->
  ?slos:Xy_slo.Slo.objective list ->
  ?parallel:Parallel.config ->
  ?serve_port:int ->
  ?serve_config:Xy_serve.Serve.config ->
  ?durable_dir:string ->
  ?sync_every:int ->
  ?segment_bytes:int ->
  unit ->
  t

(** [parallel_config t] is the pipeline configuration in force;
    [set_parallel] replaces it (takes effect at the next batch). *)
val parallel_config : t -> Parallel.config

val set_parallel : t -> Parallel.config -> unit

(** {2 Component access} *)

(** [obs t] is the metrics registry every stage reports into; snapshot
    it with {!Xy_obs.Obs.snapshot}. *)
val obs : t -> Xy_obs.Obs.t

(** [tracer t] is the per-document span tracer threaded through every
    stage; read completed traces with {!Xy_trace.Trace.traces}. *)
val tracer : t -> Xy_trace.Trace.t

(** [faults t] is the armed fault-injection plan ({!Xy_fault.Fault.none}
    when [create] got no [fault_plan]); its {!Xy_fault.Fault.injected}
    counts say which points actually fired.  Wire-level points are
    split out of the plan into {!wire_faults}. *)
val faults : t -> Xy_fault.Fault.t

(** [wire_faults t] is the {!Xy_fault.Fault.wire_points} slice of the
    fault plan, armed on the serving surface's chaotic transport
    ({!Xy_fault.Fault.none} when no wire point was in the plan).  Its
    draws happen on connection threads and are never journaled: the
    network is external state, so a restored run restarts its wire
    schedules from the seed. *)
val wire_faults : t -> Xy_fault.Fault.t

val clock : t -> Xy_util.Clock.t
val registry : t -> Xy_events.Registry.t
val mqp : t -> Xy_core.Mqp.t
val reporter : t -> Xy_reporter.Reporter.t
val trigger : t -> Xy_trigger.Trigger_engine.t
val manager : t -> Xy_submgr.Manager.t
val store : t -> Xy_warehouse.Store.t
val loader : t -> Xy_warehouse.Loader.t
val domains : t -> Xy_warehouse.Domains.t
val chain : t -> Xy_alerters.Chain.t
val web : t -> Xy_crawler.Synthetic_web.t
val queue : t -> Xy_crawler.Fetch_queue.t

(** {2 Serving surface} *)

(** [serve t] is the wire-protocol server when the system was created
    with [serve_port]/[serve_config] ([None] otherwise); its
    {!Xy_serve.Serve.port} is where clients connect. *)
val serve : t -> Xy_serve.Serve.t option

(** [serve_pump t] applies queued wire mutations (SUBSCRIBE /
    UNSUBSCRIBE / ACK) on the caller's thread and commits the
    resulting transaction, returning how many were applied.  The run
    loops call it around every step; drive it directly when serving
    without stepping. *)
val serve_pump : t -> int

(** [stop_serve ?drain t] stops the serving surface: no new
    connections, then a deadline-bounded graceful drain ([drain]
    seconds, default the server config's [drain]) flushing queued
    frames to connected clients before the sessions are closed.
    Reports still unacked at the deadline stay in the journaled
    pending store, exactly as a crash would leave them.  Idempotent;
    a no-op for systems without a serving surface. *)
val stop_serve : ?drain:float -> t -> unit

(** [steps_done t] counts completed {!crawl_step}s (journaled, so a
    restored system knows where the schedule left off). *)
val steps_done : t -> int

(** [restarts t] counts warm restarts over the durable directory's
    whole life (the [system/restarts] counter, carried across restores
    with the rest of the metrics; [0] on a fresh system). *)
val restarts : t -> int

(** [slo_reports t] is the latest evaluation of each armed freshness
    objective ([[]] without [slos], or before the first {!advance}).
    Thread-safe — the telemetry endpoint reads it live. *)
val slo_reports : t -> Xy_slo.Slo.report list

(** [durable_dir t] is the durable directory, when the system has one. *)
val durable_dir : t -> string option

(** [report_ledger_path t] is the durable report ledger's path (see
    {!Xy_reporter.Sink.ledger}); the file exists only once a ledger
    sink has delivered to it. *)
val report_ledger_path : t -> string option

(** {2 Subscriptions} *)

val subscribe :
  t -> owner:string -> text:string -> (string, Xy_submgr.Manager.error) result

val unsubscribe : t -> name:string -> (unit, Xy_submgr.Manager.error) result

(** [update t ~name ~owner ~text] replaces an installed subscription;
    the old one survives any validation failure. *)
val update :
  t -> name:string -> owner:string -> text:string -> (unit, Xy_submgr.Manager.error) result

(** [recover t path] replays a persisted subscription log. *)
val recover : t -> string -> int

(** {2 Document flow} *)

type ingest_outcome = {
  status : Xy_warehouse.Loader.status;
  alerted : bool;  (** an alert reached the processor *)
  matched : int list;  (** complex events detected *)
}

(** [ingest t ~url ~content ~kind] pushes one fetched page through
    loader → alerters → processor.  A [trace] context attributes each
    stage to the document's trace; the caller remains responsible for
    {!Xy_trace.Trace.finish}.  [birth] is the virtual birth time of
    the oldest change this content carries
    ({!Xy_crawler.Crawler.fetch.birth}): it rides the alert to the
    reporter, which records the end-to-end notification lag when the
    resulting report fires. *)
val ingest :
  ?trace:Xy_trace.Trace.ctx ->
  ?birth:float ->
  t ->
  url:string ->
  content:string ->
  kind:Xy_warehouse.Loader.content_kind ->
  ingest_outcome

(** [ingest_missing t ~url] handles a page that disappeared. *)
val ingest_missing : ?trace:Xy_trace.Trace.ctx -> t -> url:string -> unit

(** {2 Batch ingestion — the sharded pipeline}

    One crawl step's fetches form a batch.  With a [parallel]
    configuration of [domains > 1], {!ingest_batch} (and {!crawl_step},
    which routes through the same path) fans the batch out over the
    {!Parallel} engine; otherwise it runs the documents through the
    serial path one by one.  Both modes first pre-allocate (and, when
    durable, journal) DOCIDs for fresh URLs in batch order, so document
    numbering — which is embedded in alert payloads — never depends on
    which loader domain finishes first. *)

type batch_doc = {
  bd_url : string;
  bd_content : string option;  (** [None]: the page disappeared *)
  bd_kind : Xy_warehouse.Loader.content_kind;
  bd_trace : Xy_trace.Trace.ctx option;
  bd_birth : float option;
}

(** [ingest_batch t docs] processes one batch end to end (loader →
    alerters → MQP shards → reporter/trigger), honouring the system's
    parallel configuration.  Notifications, reports and journal ops
    are emitted in batch order regardless of the configuration. *)
val ingest_batch : t -> batch_doc list -> unit

(** [inject_self_monitor t] renders the current metrics snapshot and
    trace summary ({!Self_monitor}) and ingests them as documents
    under [xyleme://self/], returning the two outcomes
    [(health, traces)].  Health subscriptions fire through the normal
    pipeline. *)
val inject_self_monitor : t -> ingest_outcome * ingest_outcome

(** {2 The crawl loop} *)

(** [discover t] seeds the fetch queue with the synthetic web's
    current URLs. *)
val discover : t -> unit

(** [crawl_step t ~limit] fetches and ingests up to [limit] due pages;
    returns the number fetched. *)
val crawl_step : t -> limit:int -> int

(** [advance t ~seconds] moves virtual time: the web evolves, the
    trigger engine runs due continuous queries, the reporter evaluates
    periodic report conditions. *)
val advance : t -> seconds:float -> unit

(** [run t ~days ~step ~fetch_limit] alternates [advance] and
    [crawl_step] for [days] of virtual time. *)
val run : t -> days:float -> step:float -> fetch_limit:int -> unit

(** [run_resumable t ~days ~step ~fetch_limit] is {!run} driven by the
    journaled schedule position: on a {!restore}d system it continues
    from the step the killed run died in (without repeating a
    committed [advance]); an uninterrupted call behaves exactly like
    {!run}.  [checkpoint_every] (steps, default [0] = never)
    checkpoints a durable system as it goes. *)
val run_resumable :
  ?checkpoint_every:int ->
  t ->
  days:float ->
  step:float ->
  fetch_limit:int ->
  unit

(** {2 Checkpoint & warm restart}

    A durable system (created with [durable_dir]) journals every
    committed state change into a write-ahead log and can snapshot the
    whole pipeline into a new generation.  After a crash — including a
    [kill -9] at an arbitrary point — {!restore} rebuilds the system
    from [MANIFEST] + snapshot + WAL:

    - no subscribed URL, subscription, or buffered notification is
      lost;
    - report delivery is at-least-once: committed-but-unacked
      deliveries are re-sent with their original sequence numbers, so
      consumers that dedup by [seq] (e.g. {!Xy_reporter.Sink.directory},
      or a {!Xy_reporter.Sink.ledger} read back with
      {!Xy_reporter.Sink.read_ledger}) never observe a duplicate;
    - documents popped from the fetch queue but not yet processed are
      re-queued at their original deadline.

    The cumulative metrics themselves are carried in the checkpoint
    (the [obs] section): a restored run's [/metrics] counters and
    histograms continue from where the killed run left off, and the
    [system/restarts] counter records the warm restart itself.

    Not persisted (documented trade-offs): per-subscription
    {!Xy_alerters.Result_delta} tracker state, {!Store.history}
    windows, and SLO sliding-window samples (a restored run's burn
    rates re-fill from the carried cumulative metrics within one slow
    window). *)

type checkpoint_info = {
  generation : int;  (** the new current generation *)
  compacted_records : int;
      (** log records dropped by background compaction since the
          previous checkpoint (subscription log + report ledger) *)
}

(** [checkpoint t] snapshots the stages mutated since the last
    checkpoint into the next generation (unchanged stages are carried
    forward by reference — the pause is proportional to what actually
    changed) and starts a fresh WAL.  [force_full] re-encodes every
    stage inline.  Log compaction does NOT run here: it proceeds in
    the background, a bounded slice per crawl step.  Raises
    [Invalid_argument] on a non-durable system. *)
val checkpoint : ?force_full:bool -> t -> checkpoint_info

type restore_info = {
  generation : int;  (** generation after the post-restore checkpoint *)
  subscriptions_recovered : int;
  txns_replayed : int;  (** committed WAL transactions re-applied *)
  wal_tail : Xy_durable.Durable.tail;
      (** what the WAL's end looked like ([Torn] after a mid-write kill) *)
  requeued_fetches : int;  (** in-flight fetches re-armed *)
  redelivered_reports : int;  (** unacked report deliveries re-sent *)
}

(** [restore ~dir ()] warm-restarts a durable run: replays the
    subscription log, loads the latest snapshot, re-applies the WAL's
    committed transactions, re-arms in-flight fetches, checkpoints
    into a fresh generation, and re-delivers unacked reports.  The
    configuration arguments must match the original [create] call
    (they are not persisted).  [Error _] when [dir] holds no durable
    run or its state is damaged beyond the WAL's torn tail. *)
val restore :
  ?seed:int ->
  ?algorithm:Xy_core.Mqp.algorithm ->
  ?policy:Xy_sublang.S_compile.policy ->
  ?sink:Xy_reporter.Sink.t ->
  ?web:Xy_crawler.Synthetic_web.t ->
  ?obs:Xy_obs.Obs.t ->
  ?tracer:Xy_trace.Trace.t ->
  ?self_monitor_period:float ->
  ?fault_plan:Xy_fault.Fault.spec ->
  ?retry:Xy_crawler.Crawler.retry_policy ->
  ?slos:Xy_slo.Slo.objective list ->
  ?parallel:Parallel.config ->
  ?serve_port:int ->
  ?serve_config:Xy_serve.Serve.config ->
  ?sync_every:int ->
  ?segment_bytes:int ->
  dir:string ->
  unit ->
  (t * restore_info, string) result

(** {2 Warehouse view} *)

(** [warehouse_view t] is the integrated view continuous queries run
    over: a [<warehouse>] element with one child per semantic domain
    (documents whose root tag equals the domain name are spliced, so
    the paper's [culture/museum] paths resolve), plus
    [<unclassified>]. *)
val warehouse_view : t -> Xy_xml.Types.element

type stats = {
  documents_fetched : int;
  documents_stored : int;
  alerts_sent : int;
  notifications : int;
  reports : int;
  complex_events : int;
  atomic_events : int;
}

val stats : t -> stats
