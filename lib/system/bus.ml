module Obs = Xy_obs.Obs

type metrics = {
  m_pushed : Obs.Counter.t;
  m_popped : Obs.Counter.t;
  m_depth : Obs.Gauge.t;
  m_blocked : Obs.Histogram.t;
}

type 'a t = {
  queue : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  metrics : metrics;
}

let stage = "bus"

let create ?(capacity = 1024) ?(obs = Obs.default) ?(name = "bus") () =
  if capacity <= 0 then invalid_arg "Bus.create: capacity <= 0";
  {
    queue = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
    metrics =
      {
        m_pushed = Obs.counter obs ~stage (name ^ "_pushed");
        m_popped = Obs.counter obs ~stage (name ^ "_popped");
        m_depth = Obs.gauge obs ~stage (name ^ "_depth");
        m_blocked = Obs.histogram obs ~stage (name ^ "_blocked");
      };
  }

let push t message =
  Mutex.lock t.mutex;
  let rec wait ~blocked_since =
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Bus.push: closed"
    end
    else if Queue.length t.queue >= t.capacity then begin
      let blocked_since =
        match blocked_since with Some _ -> blocked_since | None -> Some (Obs.now ())
      in
      Condition.wait t.not_full t.mutex;
      wait ~blocked_since
    end
    else
      (* Only producers that actually hit backpressure contribute a
         sample, so the histogram count doubles as a block counter. *)
      match blocked_since with
      | Some since -> Obs.Histogram.observe t.metrics.m_blocked (Obs.now () -. since)
      | None -> ()
  in
  wait ~blocked_since:None;
  Queue.push message t.queue;
  Obs.Counter.incr t.metrics.m_pushed;
  Obs.Gauge.set_int t.metrics.m_depth (Queue.length t.queue);
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let message = Queue.pop t.queue in
      Obs.Counter.incr t.metrics.m_popped;
      Obs.Gauge.set_int t.metrics.m_depth (Queue.length t.queue);
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      Some message
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.not_empty t.mutex;
      wait ()
    end
  in
  wait ()

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
