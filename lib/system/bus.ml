module Obs = Xy_obs.Obs
module Trace = Xy_trace.Trace
module Fault = Xy_fault.Fault

type metrics = {
  m_pushed : Obs.Counter.t;
  m_popped : Obs.Counter.t;
  m_depth : Obs.Gauge.t;
  m_blocked : Obs.Histogram.t;
}

type 'a t = {
  queue : ('a * float) Queue.t;  (** (message, enqueue wall instant) *)
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  name : string;
  trace_of : ('a -> Trace.ctx option) option;
  faults : Fault.t;
  metrics : metrics;
}

let stage = "bus"

let create ?(capacity = 1024) ?(obs = Obs.default) ?(name = "bus") ?trace_of
    ?(faults = Fault.none) () =
  if capacity <= 0 then invalid_arg "Bus.create: capacity <= 0";
  {
    queue = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
    name;
    trace_of;
    faults;
    metrics =
      {
        m_pushed = Obs.counter obs ~stage (name ^ "_pushed");
        m_popped = Obs.counter obs ~stage (name ^ "_popped");
        m_depth = Obs.gauge obs ~stage (name ^ "_depth");
        m_blocked = Obs.histogram obs ~stage (name ^ "_blocked");
      };
  }

let observe_blocked t ~blocked_since =
  match blocked_since with
  | Some since -> Obs.Histogram.observe t.metrics.m_blocked (Obs.now () -. since)
  | None -> ()

let push_message t message =
  Mutex.lock t.mutex;
  let rec wait ~blocked_since =
    if t.closed then begin
      (* A producer that stalled on backpressure and then lost to a
         concurrent [close] still blocked: account for it before
         raising, or the histogram under-counts stalls. *)
      observe_blocked t ~blocked_since;
      Mutex.unlock t.mutex;
      invalid_arg "Bus.push: closed"
    end
    else if Queue.length t.queue >= t.capacity then begin
      let blocked_since =
        match blocked_since with Some _ -> blocked_since | None -> Some (Obs.now ())
      in
      Condition.wait t.not_full t.mutex;
      wait ~blocked_since
    end
    else
      (* Only producers that actually hit backpressure contribute a
         sample, so the histogram count doubles as a block counter. *)
      observe_blocked t ~blocked_since
  in
  wait ~blocked_since:None;
  Queue.push (message, Trace.now ()) t.queue;
  Obs.Counter.incr t.metrics.m_pushed;
  Obs.Gauge.set_int t.metrics.m_depth (Queue.length t.queue);
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let push t message =
  (* Fault points, consulted before the lock so a stalled or dropped
     push never holds the queue hostage.  A [bus_stall] models a slow
     producer-side hop (scheduling hiccup, transport retry); a
     [bus_drop] models a lossy hop — the message vanishes and only
     the fault-stage [bus_drop_injected] counter remembers it. *)
  if Fault.fire t.faults "bus_stall" then
    Thread.delay (0.0002 +. (0.0008 *. Fault.draw_float t.faults "bus_stall"));
  if Fault.fire t.faults "bus_drop" then () else push_message t message

let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let message, enqueued_at = Queue.pop t.queue in
      Obs.Counter.incr t.metrics.m_popped;
      Obs.Gauge.set_int t.metrics.m_depth (Queue.length t.queue);
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      (* Queue wait is recorded retroactively on the consumer side —
         the producer may live on another domain, so only the enqueue
         instant travels with the message. *)
      (match Option.bind t.trace_of (fun f -> f message) with
      | Some ctx ->
          Trace.record ctx ~stage ~name:"wait"
            ~attrs:[ ("bus", t.name) ]
            ~start_wall:enqueued_at
            ~dur_wall:(Trace.now () -. enqueued_at)
            ()
      | None -> ());
      Some message
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.not_empty t.mutex;
      wait ()
    end
  in
  wait ()

let try_pop t =
  Mutex.lock t.mutex;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.mutex;
    None
  end
  else begin
    let message, enqueued_at = Queue.pop t.queue in
    Obs.Counter.incr t.metrics.m_popped;
    Obs.Gauge.set_int t.metrics.m_depth (Queue.length t.queue);
    Condition.signal t.not_full;
    Mutex.unlock t.mutex;
    (match Option.bind t.trace_of (fun f -> f message) with
    | Some ctx ->
        Trace.record ctx ~stage ~name:"wait"
          ~attrs:[ ("bus", t.name) ]
          ~start_wall:enqueued_at
          ~dur_wall:(Trace.now () -. enqueued_at)
          ()
    | None -> ());
    Some message
  end

(* Work stealing: an idle shard takes the back half of a loaded
   sibling's inbox in one locked sweep.  The front half stays with the
   victim (preserving its local order); the stolen tail keeps its
   relative order on the thief. *)
let steal_half t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  if n < 2 then begin
    Mutex.unlock t.mutex;
    []
  end
  else begin
    let keep = n / 2 in
    let kept = Queue.create () in
    for _ = 1 to keep do
      Queue.push (Queue.pop t.queue) kept
    done;
    let stolen = ref [] in
    Queue.iter (fun (message, _) -> stolen := message :: !stolen) t.queue;
    Queue.clear t.queue;
    Queue.transfer kept t.queue;
    Obs.Counter.add t.metrics.m_popped (n - keep);
    Obs.Gauge.set_int t.metrics.m_depth keep;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex;
    List.rev !stolen
  end

let drained t =
  Mutex.lock t.mutex;
  let d = t.closed && Queue.is_empty t.queue in
  Mutex.unlock t.mutex;
  d

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
