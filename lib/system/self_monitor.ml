module Obs = Xy_obs.Obs
module Trace = Xy_trace.Trace
module T = Xy_xml.Types

let health_url = "xyleme://self/metrics.xml"
let traces_url = "xyleme://self/traces.xml"

let markers v =
  let rec grow acc threshold =
    if threshold > v || threshold > 1e9 then List.rev acc
    else
      let marker = Printf.sprintf "over_%.0f" threshold in
      grow (marker :: acc) (threshold *. 10.)
  in
  grow [] 1.

(* "12 over_1 over_10": the value itself first, then its markers, all
   plain words the subscription language's [contains] can test. *)
let value_text v =
  let rendered =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v
  in
  String.concat " " (rendered :: markers v)

let metric_value = function
  | Obs.Snapshot.Counter n -> float_of_int n
  | Obs.Snapshot.Gauge v -> v
  | Obs.Snapshot.Histogram h -> float_of_int h.Obs.Snapshot.count

let health_document ~snapshot =
  let children =
    List.map
      (fun entry ->
        let tag =
          entry.Obs.Snapshot.stage ^ "_" ^ entry.Obs.Snapshot.name
        in
        T.el tag [ T.text (value_text (metric_value entry.Obs.Snapshot.value)) ])
      snapshot.Obs.Snapshot.entries
  in
  T.element "health"
    ~attrs:[ ("at", Printf.sprintf "%g" snapshot.Obs.Snapshot.at) ]
    children

let traces_document tracer =
  let counts =
    [
      T.el "traces_started"
        [ T.text (value_text (float_of_int (Trace.started tracer))) ];
      T.el "traces_completed"
        [ T.text (value_text (float_of_int (Trace.completed tracer))) ];
    ]
  in
  let stages =
    List.map
      (fun stat ->
        let total_ms = stat.Trace.st_total_wall *. 1e3 in
        T.el
          ("trace_" ^ stat.Trace.st_stage)
          ~attrs:
            [
              ("spans", string_of_int stat.Trace.st_spans);
              ("max_ms", Printf.sprintf "%.3f" (stat.Trace.st_max_wall *. 1e3));
            ]
          [ T.text (value_text (Float.round total_ms)) ])
      (Trace.summary tracer)
  in
  T.element "trace_summary" (counts @ stages)

(* One document per objective: its URL is stable, so a subscription on
   [URL extends "xyleme://self/slo/"] sees every status transition as a
   modification of "its" page — exactly how the paper's subscribers
   watch any other page. *)
let slo_url name = Printf.sprintf "xyleme://self/slo/%s.xml" name

let slo_document (r : Xy_slo.Slo.report) =
  let o = r.Xy_slo.Slo.r_objective in
  T.element "slo"
    ~attrs:
      [
        ("name", o.Xy_slo.Slo.o_name);
        ("at", Printf.sprintf "%g" r.Xy_slo.Slo.r_at);
        ("objective", Printf.sprintf "%g of %s/%s within %gs"
           o.Xy_slo.Slo.o_target o.Xy_slo.Slo.o_stage o.Xy_slo.Slo.o_metric
           o.Xy_slo.Slo.o_threshold);
      ]
    [
      (* the word the alerting subscription tests with [contains] *)
      T.el "status"
        [ T.text (if r.Xy_slo.Slo.r_breached then "breached" else "ok") ];
      T.el "fast_burn" [ T.text (value_text r.Xy_slo.Slo.r_fast_burn) ];
      T.el "slow_burn" [ T.text (value_text r.Xy_slo.Slo.r_slow_burn) ];
      T.el "window_total"
        [ T.text (value_text (float_of_int r.Xy_slo.Slo.r_total)) ];
      T.el "window_good"
        [ T.text (value_text (float_of_int r.Xy_slo.Slo.r_good)) ];
    ]

let health_content ~snapshot =
  Xy_xml.Printer.element_to_string ~indent:2 (health_document ~snapshot) ^ "\n"

let traces_content tracer =
  Xy_xml.Printer.element_to_string ~indent:2 (traces_document tracer) ^ "\n"

let slo_content report =
  Xy_xml.Printer.element_to_string ~indent:2 (slo_document report) ^ "\n"
