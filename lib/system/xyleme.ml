let log_src = Logs.Src.create "xyleme" ~doc:"Xyleme monitoring pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module T = Xy_xml.Types
module Loader = Xy_warehouse.Loader
module Store = Xy_warehouse.Store
module Chain = Xy_alerters.Chain
module Alert = Xy_alerters.Alert
module Mqp = Xy_core.Mqp
module Manager = Xy_submgr.Manager
module Obs = Xy_obs.Obs
module Trace = Xy_trace.Trace
module Fault = Xy_fault.Fault
module Durable = Xy_durable.Durable
module Codec = Xy_util.Codec
module Persist = Xy_submgr.Persist
module Sink = Xy_reporter.Sink
module Slo = Xy_slo.Slo
module Serve = Xy_serve.Serve

(* The never-retreating wall timer now lives in {!Wall} (it is
   process-global, shared with [Distributed] and [Parallel]); the
   alias keeps this module's historical surface. *)
let monotonic_wall = Wall.monotonic

(* The background maintenance task in flight, advanced a bounded
   number of records per crawl step — log compaction used to run
   wholesale inside [checkpoint] and dominated its pause. *)
type maintenance_task =
  | Subscription_compaction of Persist.Compaction.task
  | Ledger_compaction of Sink.Ledger_compaction.task

(* Per-loader-domain pipeline stage: a private Loader + alerter Chain
   over the shared (internally locked) store and registry, plus a
   private metrics registry — loader/alerter counters are folded into
   the system registry after each batch, so totals stay exact (the
   striped cells of a shared registry can drop increments when many
   short-lived domains collide on a stripe). *)
type worker_ctx = { wc_obs : Obs.t; wc_loader : Loader.t; wc_chain : Chain.t }

(* Derived per-shard matchers (subscription-axis subsets, or full
   replicas for the one algorithm whose matcher is not
   concurrent-read-safe), cached across batches and invalidated by the
   MQP's subscribe/unsubscribe epoch. *)
type shard_cache = {
  sc_axis : Distributed.axis;
  sc_shards : int;
  sc_epoch : int;
  sc_mqps : Mqp.t array;
}

type t = {
  obs : Obs.t;
  tracer : Trace.t;
  faults : Fault.t;
  wire_faults : Fault.t;
      (** the wire-point slice of the fault plan, armed on the serving
          surface's chaotic transport; never journaled *)
  clock : Xy_util.Clock.t;
  registry : Xy_events.Registry.t;
  mqp : Mqp.t;
  reporter : Xy_reporter.Reporter.t;
  trigger : Xy_trigger.Trigger_engine.t;
  store : Store.t;
  domains : Xy_warehouse.Domains.t;
  loader : Loader.t;
  chain : Chain.t;
  web : Xy_crawler.Synthetic_web.t;
  queue : Xy_crawler.Fetch_queue.t;
  crawler : Xy_crawler.Crawler.t;
  mutable manager : Manager.t option;  (** set right after creation *)
  self_monitor_period : float option;
  mutable self_monitor_deadline : float option;
  mutable alerts_sent : int;
  durable : Durable.t option;
  mutable maintenance : maintenance_task option;
  mutable compacted_since_checkpoint : int;
  mutable persist_floor : int;
      (** subscription-log size right after its last compaction — the
          next one starts when the log doubles past this *)
  mutable ledger_floor : int;
  mutable steps_done : int;
  mutable mid_step : bool;
      (** an [advance] has committed since the last completed
          [crawl_step] — lets a resumed run know whether to advance
          again (journaled, so a kill between the two cannot
          double-advance the clock) *)
  m_ingested : Obs.Counter.t;
  m_ingest_latency : Obs.Histogram.t;
  m_quarantined : Obs.Counter.t;
  m_restarts : Obs.Counter.t;
      (** warm restarts survived — carried across restores with the
          rest of the metrics, so it counts the directory's lifetime *)
  slo : Slo.t option;
  slo_breached : (string, bool) Hashtbl.t;
      (** last injected status per objective: an SLO document is
          (re-)ingested only when the status flips, not every tick *)
  algorithm : Mqp.algorithm;
  mutable parallel : Parallel.config;
  mutable worker_ctxs : worker_ctx array;
  mutable shard_cache : shard_cache option;
  serve_cell : Serve.t option ref;
      (** a cell, not a plain field: the wire sink closes over it
          before the system record exists *)
}

let default_domains () =
  let domains = Xy_warehouse.Domains.create () in
  Xy_warehouse.Domains.register_keyword domains ~keyword:"museum" ~domain:"culture";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"painting" ~domain:"culture";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"catalog" ~domain:"commerce";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"product" ~domain:"commerce";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"team" ~domain:"people";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"Member" ~domain:"people";
  domains

let warehouse_view t =
  let by_domain : (string, T.node list ref) Hashtbl.t = Hashtbl.create 8 in
  let push domain nodes =
    match Hashtbl.find_opt by_domain domain with
    | Some existing -> existing := !existing @ nodes
    | None -> Hashtbl.replace by_domain domain (ref nodes)
  in
  Store.iter
    (fun entry ->
      match entry.Store.tree with
      | None -> ()
      | Some tree ->
          let root = Xy_xml.Xid.strip tree in
          let domain =
            Option.value ~default:"unclassified"
              entry.Store.meta.Xy_warehouse.Meta.domain
          in
          (* Splice when the document root already carries the domain
             name, so that [culture/museum] resolves. *)
          if root.T.tag = domain then push domain root.T.children
          else push domain [ T.Element root ])
    t.store;
  let children =
    Hashtbl.fold
      (fun domain nodes acc -> (domain, T.el domain !nodes) :: acc)
      by_domain []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  T.element "warehouse" children

(* ------------------------------------------------------------------ *)
(* Durable plumbing.  All stage journaling goes through per-stage
   hooks installed by [attach_hooks]; the system's own state (clock,
   step counter, warehouse loads) journals here under the [system] and
   [warehouse] stage tags. *)

let journal_op t ~stage encode =
  match t.durable with
  | None -> ()
  | Some d ->
      let buf = Buffer.create 64 in
      encode buf;
      Durable.journal d ~stage (Buffer.contents buf)

(* Commit the open transaction; when it carried report-delivery
   intents, sync the WAL *before* invoking the sinks (at-least-once:
   an intent is durable before its report leaves the system) and
   commit the acknowledgements right after.  The sink runs only once
   the whole transaction is on disk, so a group-commit batch lost at a
   kill can only ever drop *whole* transactions — never the tail of an
   ingest whose report barrier persisted the head. *)
let commit_txn t =
  match t.durable with
  | None -> ()
  | Some d ->
      Durable.commit d;
      if Xy_reporter.Reporter.outbox_size t.reporter > 0 then begin
        Durable.barrier d;
        ignore (Xy_reporter.Reporter.flush_outbox t.reporter);
        Durable.commit d
      end

(* A consultation of the [crash] fault point: a stage boundary the
   kill-at-any-point tests can die at.  The transaction in progress is
   discarded — exactly what a real kill would do to unflushed state. *)
let crash_point t label =
  if Fault.fire t.faults "crash" then begin
    Option.iter Durable.discard t.durable;
    Log.warn (fun m -> m "injected crash at %s" label);
    raise (Fault.Crash label)
  end

let journal_counters t =
  journal_op t ~stage:"system" (fun buf ->
      let ms = Mqp.stats t.mqp in
      Codec.string buf "c";
      Codec.int buf t.alerts_sent;
      Codec.int buf ms.Mqp.alerts_processed;
      Codec.int buf ms.Mqp.notifications_emitted)

let journal_self_monitor_deadline t =
  journal_op t ~stage:"system" (fun buf ->
      Codec.string buf "M";
      match t.self_monitor_deadline with
      | Some d ->
          Codec.bool buf true;
          Codec.float buf d
      | None -> Codec.bool buf false)

let encode_system t =
  let buf = Buffer.create 64 in
  Codec.float buf (Xy_util.Clock.now t.clock);
  Codec.int buf t.steps_done;
  Codec.bool buf t.mid_step;
  Codec.int buf t.alerts_sent;
  (match t.self_monitor_deadline with
  | Some d ->
      Codec.bool buf true;
      Codec.float buf d
  | None -> Codec.bool buf false);
  let ms = Mqp.stats t.mqp in
  Codec.int buf ms.Mqp.alerts_processed;
  Codec.int buf ms.Mqp.notifications_emitted;
  Buffer.contents buf

let decode_system t payload =
  let r = Codec.reader payload in
  Xy_util.Clock.set t.clock (Codec.read_float r);
  t.steps_done <- Codec.read_int r;
  t.mid_step <- Codec.read_bool r;
  t.alerts_sent <- Codec.read_int r;
  t.self_monitor_deadline <-
    (if Codec.read_bool r then Some (Codec.read_float r) else None);
  let alerts_processed = Codec.read_int r in
  let notifications_emitted = Codec.read_int r in
  Codec.expect_end r;
  Mqp.restore_counters t.mqp ~alerts_processed ~notifications_emitted

(* The metrics themselves are durable state: the cumulative counters
   and histograms ride the checkpoint, so a warm restart's [/metrics]
   series keep climbing instead of resetting — scrape deltas stay
   meaningful.  Encoded from a live snapshot; decoded by folding the
   values back into the (fresh) registry via {!Obs.absorb}. *)
let encode_obs t =
  let s = Obs.snapshot t.obs in
  let buf = Buffer.create 512 in
  Codec.list buf
    (fun buf (e : Obs.Snapshot.entry) ->
      Codec.string buf e.Obs.Snapshot.stage;
      Codec.string buf e.Obs.Snapshot.name;
      match e.Obs.Snapshot.value with
      | Obs.Snapshot.Counter n ->
          Codec.int buf 0;
          Codec.int buf n
      | Obs.Snapshot.Gauge v ->
          Codec.int buf 1;
          Codec.float buf v
      | Obs.Snapshot.Histogram h ->
          Codec.int buf 2;
          Codec.list buf Codec.float (Array.to_list h.Obs.Snapshot.bounds);
          Codec.list buf Codec.int (Array.to_list h.Obs.Snapshot.counts);
          Codec.float buf h.Obs.Snapshot.sum;
          Codec.float buf h.Obs.Snapshot.max_value)
    s.Obs.Snapshot.entries;
  Buffer.contents buf

let decode_obs t payload =
  let r = Codec.reader payload in
  let entries =
    Codec.read_list r (fun r ->
        let stage = Codec.read_string r in
        let name = Codec.read_string r in
        let value =
          match Codec.read_int r with
          | 0 -> Obs.Snapshot.Counter (Codec.read_int r)
          | 1 -> Obs.Snapshot.Gauge (Codec.read_float r)
          | 2 ->
              let bounds = Array.of_list (Codec.read_list r Codec.read_float) in
              let counts = Array.of_list (Codec.read_list r Codec.read_int) in
              let sum = Codec.read_float r in
              let max_value = Codec.read_float r in
              let count = Array.fold_left ( + ) 0 counts in
              Obs.Snapshot.Histogram
                { Obs.Snapshot.bounds; counts; count; sum; max_value }
          | k -> raise (Codec.Malformed (Printf.sprintf "unknown metric kind %d" k))
        in
        { Obs.Snapshot.stage; name; value })
  in
  Codec.expect_end r;
  Obs.absorb t.obs { Obs.Snapshot.at = neg_infinity; entries }

(* Thunks, not payloads: [Durable.checkpoint] only runs the encoder of
   stages journaled since the last checkpoint and carries the rest
   forward by reference. *)
let snapshot_sections t =
  [
    ("system", fun () -> encode_system t);
    ("obs", fun () -> encode_obs t);
    ("fault", fun () -> Fault.encode_snapshot t.faults);
    ("web", fun () -> Xy_crawler.Synthetic_web.encode_snapshot t.web);
    ("warehouse", fun () -> Store.encode_snapshot t.store);
    ("queue", fun () -> Xy_crawler.Fetch_queue.encode_snapshot t.queue);
    ("crawler", fun () -> Xy_crawler.Crawler.encode_snapshot t.crawler);
    ("trigger", fun () -> Xy_trigger.Trigger_engine.encode_snapshot t.trigger);
    ("reporter", fun () -> Xy_reporter.Reporter.encode_snapshot t.reporter);
  ]
  @
  match !(t.serve_cell) with
  | Some s -> [ ("serve", fun () -> Serve.encode_snapshot s) ]
  | None -> []

(* Stages whose every mutation is journaled as an op, so their state
   is exactly base-snapshot + WAL replay: these may checkpoint as
   delta sections instead of re-encoding.  The reporter is the one
   stage whose payload grows with the subscription population (per-sub
   report frames), which is what made checkpoints stall at 10^5 subs.
   The web must NOT be listed (it re-evolves via [mark_dirty], not
   ops), nor the queue (restore's re-arming mutates it outside the
   journal). *)
let wal_carried_stages = [ "reporter" ]

let attach_hooks t d =
  let j stage = Some (fun payload -> Durable.journal d ~stage payload) in
  Durable.set_wal_carried d wal_carried_stages;
  Xy_crawler.Fetch_queue.set_journal t.queue (j "queue");
  Xy_crawler.Crawler.set_journal t.crawler (j "crawler");
  Xy_trigger.Trigger_engine.set_journal t.trigger (j "trigger");
  Fault.set_journal t.faults (j "fault");
  (* the wire pending store is a durable stage too: report enqueues
     and client acks journal as ops, and its delivery boundaries are
     crash windows the matrix tests can kill inside *)
  (match !(t.serve_cell) with
  | Some s ->
      Serve.set_journal s (j "serve");
      Serve.set_fuse s (Some (fun label -> crash_point t ("serve:" ^ label)))
  | None -> ());
  (* every checkpoint/rotation boundary is a crash window the matrix
     tests can kill inside *)
  Durable.set_fuse d (fun label -> crash_point t ("durable:" ^ label));
  (* The reporter acknowledges deliveries externally, so its commit
     must also be a sync barrier: a group-commit batch lost at a kill
     may never contain a delivery intent whose report was sent.  The
     fire path itself defers sink invocation to [commit_txn]'s flush;
     this hook only serves [redeliver_pending] during restore. *)
  Xy_reporter.Reporter.set_persistence t.reporter ~journal:(j "reporter")
    ~commit:
      (Some
         (fun () ->
           Durable.commit d;
           Durable.barrier d))

(* ------------------------------------------------------------------ *)

let make ?(seed = 1) ?algorithm ?policy ?persist_path ?sink ?web ?obs ?tracer
    ?self_monitor_period ?fault_plan ?retry ?slos ?parallel ?serve_config
    ~durable () =
  (* Wall-clock latencies: xy_obs itself is zero-dependency, so the
     high-resolution (and never-retreating) timer is installed here,
     where unix is linked — once per process, whatever creates first. *)
  Wall.install_timers ();
  let obs = match obs with Some o -> o | None -> Obs.create () in
  (* The failure schedule shares the system seed: one (seed, spec)
     pair pins the whole run, faults included.  A durable system
     always carries a real injector (even with an empty spec): the
     [crash] point and the restored fault streams must never live in
     the shared {!Fault.none}. *)
  (* The wire points live in their own injector: the serving surface
     draws from it on connection threads, outside the pipeline's
     journal discipline (the network is external state — a restore
     restarts wire schedules from the seed).  Splitting the plan also
     keeps the pipeline points' per-point streams byte-identical
     whether or not network chaos is armed. *)
  let wire_spec, pipeline_spec =
    match fault_plan with
    | None -> ([], [])
    | Some spec ->
        List.partition (fun (p, _) -> List.mem p Fault.wire_points) spec
  in
  let faults =
    match pipeline_spec with
    | [] -> if durable = None then Fault.none else Fault.create ~obs ~seed []
    | spec -> Fault.create ~obs ~seed spec
  in
  let wire_faults =
    match wire_spec with [] -> Fault.none | spec -> Fault.create ~obs ~seed spec
  in
  (match (wire_spec, serve_config) with
  | _ :: _, None ->
      Log.warn (fun m ->
          m
            "fault plan arms wire points (%s) but no serving surface is \
             configured; they will never fire"
            (String.concat ", " (List.map fst wire_spec)))
  | _ -> ());
  let clock = Xy_util.Clock.create () in
  let tracer =
    match tracer with Some tr -> tr | None -> Trace.create ~seed ()
  in
  (* Span virtual timestamps follow this system's simulation clock. *)
  Trace.set_virtual_clock tracer (fun () -> Xy_util.Clock.now clock);
  let registry = Xy_events.Registry.create () in
  let mqp = Mqp.create ?algorithm ~obs () in
  let sink = match sink with Some s -> s | None -> Xy_reporter.Sink.null () in
  (* The wire path rides the normal sink slot: deliveries tee into the
     serving surface, which journals them into its pending store and
     streams them to whichever client has claimed the recipient.  A
     cell, because the system record the server lives in does not
     exist yet. *)
  let serve_cell =
    ref
      (Option.map
         (fun c -> Serve.create ~obs ~faults:wire_faults ~config:c ())
         serve_config)
  in
  let sink =
    match serve_config with
    | None -> sink
    | Some _ ->
        Sink.tee sink
          {
            Sink.deliver =
              (fun d ->
                match !serve_cell with
                | None -> ()
                | Some s ->
                    Serve.deliver s ~seq:d.Sink.seq ~recipient:d.Sink.recipient
                      ~subscription:d.Sink.subscription ~at:d.Sink.at
                      ~body:(Xy_xml.Printer.element_to_string d.Sink.report));
          }
  in
  let reporter = Xy_reporter.Reporter.create ~obs ~clock ~sink () in
  let trigger = Xy_trigger.Trigger_engine.create ~obs ~clock () in
  let store = Store.create () in
  let domains = default_domains () in
  let loader = Loader.create ~domains ~obs ~store ~clock () in
  let chain = Chain.create ~obs registry in
  let web =
    match web with
    | Some w -> w
    | None -> Xy_crawler.Synthetic_web.generate ~seed ~sites:4 ~pages_per_site:5 ()
  in
  let queue = Xy_crawler.Fetch_queue.create ~obs ~clock () in
  let crawler =
    Xy_crawler.Crawler.create ~obs ~tracer ~faults ~clock ?retry ~web ~queue ()
  in
  let t =
    {
      obs;
      tracer;
      faults;
      wire_faults;
      clock;
      registry;
      mqp;
      reporter;
      trigger;
      store;
      domains;
      loader;
      chain;
      web;
      queue;
      crawler;
      manager = None;
      self_monitor_period;
      self_monitor_deadline =
        Option.map (fun p -> Xy_util.Clock.now clock +. p) self_monitor_period;
      alerts_sent = 0;
      durable;
      maintenance = None;
      compacted_since_checkpoint = 0;
      persist_floor = 0;
      ledger_floor = 0;
      steps_done = 0;
      mid_step = false;
      m_ingested = Obs.counter obs ~stage:"system" "ingested";
      m_ingest_latency = Obs.histogram obs ~stage:"system" "ingest_latency";
      m_quarantined = Obs.counter obs ~stage:"fault" "quarantined";
      m_restarts = Obs.counter obs ~stage:"system" "restarts";
      slo =
        (match slos with
        | None | Some [] -> None
        | Some objectives -> Some (Slo.create objectives));
      slo_breached = Hashtbl.create 8;
      algorithm = Option.value ~default:Mqp.Use_aes algorithm;
      parallel = Option.value ~default:Parallel.default_config parallel;
      worker_ctxs = [||];
      shard_cache = None;
      serve_cell;
    }
  in
  (* Durability timings (checkpoint pause, fsync batches, rotations)
     land in the same registry as the pipeline stages. *)
  Option.iter (fun d -> Durable.set_obs d obs) durable;
  (* The durable directory owns the subscription log. *)
  let persist_path =
    match durable with
    | Some d -> Some (Durable.subscription_log_path d)
    | None -> persist_path
  in
  let persist =
    Option.map (Xy_submgr.Persist.open_log ~faults) persist_path
  in
  let run_query query =
    Xy_query.Eval.eval query (Xy_query.Eval.env (warehouse_view t))
  in
  let manager =
    Manager.create ?policy ?persist ~obs ~clock ~registry ~mqp ~trigger
      ~reporter ~run_query ()
  in
  t.manager <- Some manager;
  t

let durable_config ?sync_every ?segment_bytes () =
  let d = Durable.default_config in
  {
    d with
    Durable.sync_every = Option.value ~default:d.Durable.sync_every sync_every;
    segment_bytes = Option.value ~default:d.Durable.segment_bytes segment_bytes;
  }

let parallel_config t = t.parallel
let set_parallel t config = t.parallel <- config

let obs t = t.obs
let tracer t = t.tracer
let faults t = t.faults
let wire_faults t = t.wire_faults
let clock t = t.clock
let registry t = t.registry
let mqp t = t.mqp
let reporter t = t.reporter
let trigger t = t.trigger
let manager t = Option.get t.manager
let store t = t.store
let loader t = t.loader
let domains t = t.domains
let chain t = t.chain
let web t = t.web
let queue t = t.queue
let steps_done t = t.steps_done
let restarts t = Obs.Counter.value t.m_restarts
let durable_dir t = Option.map Durable.dir t.durable
let report_ledger_path t = Option.map Durable.report_ledger_path t.durable

let apply_refresh_statements t =
  List.iter
    (fun (url, period) -> Xy_crawler.Fetch_queue.boost t.queue ~url ~period)
    (Manager.refresh_statements (manager t))

let subscribe t ~owner ~text =
  let result = Manager.subscribe (manager t) ~owner ~text in
  (match result with
  | Ok name ->
      Log.info (fun m -> m "subscribed %s (owner %s)" name owner);
      apply_refresh_statements t;
      commit_txn t
  | Error e ->
      Log.warn (fun m -> m "subscription rejected: %s" (Manager.error_to_string e)));
  result

let unsubscribe t ~name =
  (* Capture the departing subscription's refresh clauses first: its
     ceiling contributions must be withdrawn, not leak into the
     refresh schedule forever. *)
  let refresh = Manager.subscription_refresh (manager t) ~name in
  match Manager.unsubscribe (manager t) ~name with
  | Error _ as e -> e
  | Ok () ->
      List.iter
        (fun (url, _period) -> Xy_crawler.Fetch_queue.reset_ceiling t.queue ~url)
        refresh;
      (* remaining subscriptions re-assert what they still demand *)
      apply_refresh_statements t;
      commit_txn t;
      Ok ()

(* ------------------------------------------------------------------ *)
(* Serving surface.  The server state (pending store, metrics) is
   built in [make] so restore can replay journaled deliveries into it;
   the socket only opens here, once the manager exists to back the
   protocol's mutations. *)

let serve t = !(t.serve_cell)

let serve_listen t =
  match !(t.serve_cell) with
  | None -> ()
  | Some s ->
      Serve.listen s
        ~callbacks:
          {
            Serve.cb_subscribe =
              (fun ~owner ~text ->
                match subscribe t ~owner ~text with
                | Ok name -> Ok name
                | Error e -> Error (Manager.error_to_string e));
            cb_unsubscribe =
              (fun name ->
                match unsubscribe t ~name with
                | Ok () -> Ok ()
                | Error e -> Error (Manager.error_to_string e));
            cb_status =
              (fun () ->
                Self_monitor.health_content ~snapshot:(Obs.snapshot t.obs));
          }

(* Apply queued wire mutations (SUBSCRIBE/UNSUBSCRIBE/ACK) on the
   pipeline thread — the manager, MQP and journal are not thread-safe,
   so connection threads only ever enqueue.  Called between steps by
   [advance]/[crawl_step]; exposed for driving a server outside a
   run loop. *)
let serve_pump t =
  match !(t.serve_cell) with
  | None -> 0
  | Some s ->
      let span name f =
        let ctx = Trace.start t.tracer ~root:"serve" in
        Trace.wrap ctx ~stage:"serve" ~name f;
        Option.iter (fun c -> Trace.finish c) ctx
      in
      let n = Serve.pump ~span s in
      if n > 0 then commit_txn t;
      n

let stop_serve ?drain t = Option.iter (Serve.stop ?drain) !(t.serve_cell)

let create ?seed ?algorithm ?policy ?persist_path ?sink ?web ?obs ?tracer
    ?self_monitor_period ?fault_plan ?retry ?slos ?parallel ?serve_port
    ?serve_config ?durable_dir ?sync_every ?segment_bytes () =
  let serve_config =
    match (serve_config, serve_port) with
    | (Some _ as c), _ -> c
    | None, Some port -> Some (Serve.config ~port ())
    | None, None -> None
  in
  let config = durable_config ?sync_every ?segment_bytes () in
  let durable = Option.map (Durable.open_fresh ~config) durable_dir in
  let t =
    make ?seed ?algorithm ?policy ?persist_path ?sink ?web ?obs ?tracer
      ?self_monitor_period ?fault_plan ?retry ?slos ?parallel ?serve_config
      ~durable ()
  in
  Option.iter (attach_hooks t) durable;
  serve_listen t;
  t

let update t ~name ~owner ~text =
  let result = Manager.update (manager t) ~name ~owner ~text in
  (match result with
  | Ok () ->
      apply_refresh_statements t;
      commit_txn t
  | Error _ -> ());
  result

let recover t path = Manager.recover (manager t) path

type ingest_outcome = {
  status : Loader.status;
  alerted : bool;
  matched : int list;
}

let kind_tag = function Loader.Xml -> 0 | Loader.Html -> 1 | Loader.Auto -> 2

let kind_of_tag = function
  | 0 -> Loader.Xml
  | 1 -> Loader.Html
  | 2 -> Loader.Auto
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown content kind %d" n))

let ingest ?trace ?birth t ~url ~content ~kind =
  Obs.Counter.incr t.m_ingested;
  Obs.Histogram.time t.m_ingest_latency @@ fun () ->
  let result =
    Trace.wrap trace ~stage:"warehouse" ~name:"load" @@ fun () ->
    Loader.load t.loader ~url ~content ~kind
  in
  (* Journal the load before the alerter chain runs: replay re-applies
     it through the Loader alone — notifications and reports are
     replayed from their own journaled ops, never re-derived, so a
     restore cannot double-notify. *)
  journal_op t ~stage:"warehouse" (fun buf ->
      Codec.string buf "L";
      Codec.string buf url;
      Codec.int buf (kind_tag kind);
      Codec.string buf content;
      Codec.float buf (Xy_util.Clock.now t.clock));
  match Chain.process ?trace t.chain ~result ~content with
  | None -> { status = result.Loader.status; alerted = false; matched = [] }
  | Some alert ->
      t.alerts_sent <- t.alerts_sent + 1;
      let matched =
        Mqp.process t.mqp
          {
            Mqp.url = alert.Alert.url;
            events = alert.Alert.events;
            payload = Alert.payload_string alert;
            trace;
            birth;
          }
      in
      journal_counters t;
      if matched <> [] then
        Log.debug (fun m ->
            m "%s matched %d complex event(s)" url (List.length matched));
      { status = result.Loader.status; alerted = true; matched }

let ingest_missing ?trace t ~url =
  let tree =
    Option.bind (Store.find t.store url) (fun entry -> entry.Store.tree)
  in
  match Loader.delete t.loader ~url with
  | None -> ()
  | Some meta -> (
      journal_op t ~stage:"warehouse" (fun buf ->
          Codec.string buf "X";
          Codec.string buf url;
          Codec.float buf (Xy_util.Clock.now t.clock));
      match Chain.process_deleted ?trace t.chain ~meta ~tree with
      | None -> ()
      | Some alert ->
          t.alerts_sent <- t.alerts_sent + 1;
          ignore
            (Mqp.process t.mqp
               {
                 Mqp.url = alert.Alert.url;
                 events = alert.Alert.events;
                 payload = Alert.payload_string alert;
                 trace;
                 birth = None;
               });
          journal_counters t)

(* ------------------------------------------------------------------ *)
(* Batch ingestion: the sharded crawl → match → report pipeline.

   One crawl step's fetches are processed as a batch.  With
   [parallel.domains <= 1] the batch runs through the historical
   serial loop; otherwise it fans out over {!Parallel}: loader domains
   parse/warehouse/diff/detect, MQP shards match, and this domain —
   the single owner of journal, reporter and trigger state — drains
   the results strictly in batch order, so both modes emit the same
   notifications in the same order and journal the same ops. *)

type batch_doc = {
  bd_url : string;
  bd_content : string option;  (** [None]: the page disappeared *)
  bd_kind : Loader.content_kind;
  bd_trace : Trace.ctx option;
  bd_birth : float option;
}

(* What a loader domain hands to the drainer, alongside the alert the
   engine routes to the shards. *)
type batch_outcome =
  | B_loaded of Loader.status * Mqp.alert option * float  (** load span *)
  | B_quarantined of string
  | B_missing of bool * Mqp.alert option  (** was warehoused? *)

let worker_ctxs t ~domains =
  if Array.length t.worker_ctxs <> domains then
    (* Built on this domain: [Chain.create] registers registry
       listeners, and the registry is not thread-safe.  Rebuilt only
       when the domain count changes (stale ctx chains stay registered
       as listeners — idle, they just track subscription changes). *)
    t.worker_ctxs <-
      Array.init domains (fun _ ->
          let wc_obs = Obs.create () in
          {
            wc_obs;
            wc_loader =
              Loader.create ~domains:t.domains ~obs:wc_obs ~store:t.store
                ~clock:t.clock ();
            wc_chain = Chain.create ~obs:wc_obs t.registry;
          });
  t.worker_ctxs

(* Derived per-shard matchers, cached until the subscription set
   changes.  [Split_subscriptions]: each shard holds its id-modulo
   subset.  [Split_documents] normally shares [t.mqp] read-only across
   shard domains and needs nothing here; the counting algorithm is the
   exception (its match scratch lives in the structure), so it gets a
   full replica per shard — which also keeps work stealing valid,
   replicas being interchangeable. *)
let derived_shard_mqps t ~axis ~shards =
  let epoch = Mqp.mutations t.mqp in
  match t.shard_cache with
  | Some c when c.sc_axis = axis && c.sc_shards = shards && c.sc_epoch = epoch
    ->
      c.sc_mqps
  | _ ->
      (* Scratch registry: shard-replica instruments must not shadow
         the real processor's metrics. *)
      let scratch = Obs.create () in
      let mqps =
        Array.init shards (fun slot ->
            let m = Mqp.create ~algorithm:t.algorithm ~obs:scratch () in
            Mqp.iter_complex t.mqp (fun ~id events ->
                match axis with
                | Distributed.Split_documents -> Mqp.subscribe m ~id events
                | Distributed.Split_subscriptions ->
                    if
                      Xy_core.Partition.slot_of_subscription ~partitions:shards
                        id
                      = slot
                    then Mqp.subscribe m ~id events);
            Mqp.freeze m;
            m)
      in
      t.shard_cache <-
        Some { sc_axis = axis; sc_shards = shards; sc_epoch = epoch; sc_mqps = mqps };
      mqps

(* Fold a worker's private registry into the system one: counters add,
   histograms add pointwise, then the worker registry resets so the
   next batch folds only its delta.  Gauges are skipped — they are
   last-value instruments owned by the serial pipeline. *)
let absorb_worker_obs t ctxs =
  Array.iter
    (fun ctx ->
      let s = Obs.snapshot ctx.wc_obs in
      List.iter
        (fun (e : Obs.Snapshot.entry) ->
          match e.Obs.Snapshot.value with
          | Obs.Snapshot.Counter 0 -> ()
          | Obs.Snapshot.Counter n ->
              Obs.Counter.add
                (Obs.counter t.obs ~stage:e.Obs.Snapshot.stage
                   e.Obs.Snapshot.name)
                n
          | Obs.Snapshot.Gauge _ -> ()
          | Obs.Snapshot.Histogram h ->
              if h.Obs.Snapshot.count > 0 then
                Obs.Histogram.inject
                  (Obs.histogram ~buckets:h.Obs.Snapshot.bounds t.obs
                     ~stage:e.Obs.Snapshot.stage e.Obs.Snapshot.name)
                  ~counts:h.Obs.Snapshot.counts ~sum:h.Obs.Snapshot.sum
                  ~max_value:h.Obs.Snapshot.max_value)
        s.Obs.Snapshot.entries;
      Obs.reset ctx.wc_obs)
    ctxs

let mqp_alert_of (alert : Alert.t) ~trace ~birth =
  {
    Mqp.url = alert.Alert.url;
    events = alert.Alert.events;
    payload = Alert.payload_string alert;
    trace;
    birth;
  }

(* The serial member of the pair: byte-for-byte the historical
   [crawl_step] per-document body. *)
let process_one_serial t ~conclude d =
  crash_point t ("ingest:" ^ d.bd_url);
  (match d.bd_content with
  | None -> ingest_missing ?trace:d.bd_trace t ~url:d.bd_url
  | Some content ->
      (* Unparseable documents are quarantined, not fatal: the
         rejection is counted, logged and the crawl goes on, so a
         corrupted page cannot take the pipeline down. *)
      let outcome =
        match
          ingest ?trace:d.bd_trace ?birth:d.bd_birth t ~url:d.bd_url ~content
            ~kind:d.bd_kind
        with
        | outcome -> Some outcome
        | exception Loader.Rejected reason ->
            Obs.Counter.incr t.m_quarantined;
            Log.warn (fun m -> m "quarantined %s: %s" d.bd_url reason);
            None
      in
      let changed =
        match outcome with
        | Some { status = Loader.Unchanged; _ } -> false
        | Some _ | None -> true
      in
      if conclude then
        Xy_crawler.Crawler.conclude t.crawler ~url:d.bd_url ~changed);
  (* The document's synchronous journey ends here; reports held
     back by buffering fire from [tick] without attribution. *)
  Option.iter Trace.finish d.bd_trace;
  commit_txn t

let process_batch t ~conclude docs =
  (* DOCID pre-pass, in batch order on this domain: numbering must not
     depend on which loader domain finishes first (the id is embedded
     in alert payloads), so fresh URLs allocate — and journal — before
     anything fans out.  Both modes run it, so serial and parallel
     runs of one batch number identically. *)
  List.iter
    (fun d ->
      match d.bd_content with
      | Some _ when not (Store.has_docid t.store ~url:d.bd_url) ->
          ignore (Store.allocate_docid t.store ~url:d.bd_url);
          journal_op t ~stage:"warehouse" (fun buf ->
              Codec.string buf "D";
              Codec.string buf d.bd_url)
      | _ -> ())
    docs;
  commit_txn t;
  let config = t.parallel in
  if config.Parallel.domains <= 1 || docs = [] then
    List.iter (process_one_serial t ~conclude) docs
  else begin
    let docs = Array.of_list docs in
    (* Worker-death draws happen here, serially: [Fault.fire] counts
       and journals at draw time and neither is multi-domain safe.
       The kill flag rides the doc's shard message instead. *)
    let kill = Array.map (fun _ -> Fault.fire t.faults "worker") docs in
    let ctxs = worker_ctxs t ~domains:config.Parallel.domains in
    let counting = t.algorithm = Mqp.Use_counting in
    let shard_match, steal_ok =
      match config.Parallel.axis with
      | Distributed.Split_documents when not counting ->
          (* one frozen structure, read-only from every shard domain *)
          ( (fun ~slot:_ ~dest:_ (a : Mqp.alert) ->
              Mqp.match_readonly t.mqp a.Mqp.events),
            true )
      | Distributed.Split_documents ->
          let replicas =
            derived_shard_mqps t ~axis:Distributed.Split_documents
              ~shards:config.Parallel.shards
          in
          ( (fun ~slot ~dest:_ (a : Mqp.alert) ->
              Mqp.match_readonly replicas.(slot) a.Mqp.events),
            true )
      | Distributed.Split_subscriptions ->
          let subsets =
            derived_shard_mqps t ~axis:Distributed.Split_subscriptions
              ~shards:config.Parallel.shards
          in
          (* The subset identity travels with the message ([dest]), so
             stolen work still matches the right subscriptions — but a
             thief then reads the victim's structure concurrently,
             which the counting matcher cannot tolerate. *)
          ( (fun ~slot:_ ~dest (a : Mqp.alert) ->
              Mqp.match_readonly subsets.(dest) a.Mqp.events),
            not counting )
    in
    let config =
      { config with Parallel.steal = config.Parallel.steal && steal_ok }
    in
    let worker ~slot d =
      let ctx = ctxs.(slot) in
      match d.bd_content with
      | None -> (
          let tree =
            Option.bind (Store.find t.store d.bd_url) (fun e -> e.Store.tree)
          in
          match Loader.delete ctx.wc_loader ~url:d.bd_url with
          | None -> (B_missing (false, None), None)
          | Some meta ->
              let alert =
                Option.map
                  (mqp_alert_of ~trace:d.bd_trace ~birth:None)
                  (Chain.process_deleted ?trace:d.bd_trace ctx.wc_chain ~meta
                     ~tree)
              in
              (B_missing (true, alert), alert))
      | Some content -> (
          let t0 = Obs.now () in
          match
            Trace.wrap d.bd_trace ~stage:"warehouse" ~name:"load" @@ fun () ->
            Loader.load ctx.wc_loader ~url:d.bd_url ~content ~kind:d.bd_kind
          with
          | exception Loader.Rejected reason -> (B_quarantined reason, None)
          | result ->
              let alert =
                Option.map
                  (mqp_alert_of ~trace:d.bd_trace ~birth:d.bd_birth)
                  (Chain.process ?trace:d.bd_trace ctx.wc_chain ~result
                     ~content)
              in
              ( B_loaded (result.Loader.status, alert, Obs.now () -. t0),
                alert ))
    in
    (* Drainer: mirrors [process_one_serial]'s per-document effects —
       same journal ops, same counters, same listener dispatch — just
       with the load and the match already done elsewhere. *)
    let dispatch alert matched =
      match (alert, matched) with
      | Some alert, Some (ids, latency) ->
          t.alerts_sent <- t.alerts_sent + 1;
          ignore (Mqp.dispatch_matched t.mqp alert ~matched:ids ~latency);
          journal_counters t
      | _ -> ()
    in
    let drain idx outcome matched =
      let d = docs.(idx) in
      crash_point t ("ingest:" ^ d.bd_url);
      (match outcome with
      | B_missing (deleted, alert) ->
          if deleted then begin
            journal_op t ~stage:"warehouse" (fun buf ->
                Codec.string buf "X";
                Codec.string buf d.bd_url;
                Codec.float buf (Xy_util.Clock.now t.clock));
            dispatch alert matched
          end
      | B_quarantined reason ->
          Obs.Counter.incr t.m_quarantined;
          Log.warn (fun m -> m "quarantined %s: %s" d.bd_url reason);
          if conclude then
            Xy_crawler.Crawler.conclude t.crawler ~url:d.bd_url ~changed:true
      | B_loaded (status, alert, span) ->
          Obs.Counter.incr t.m_ingested;
          Obs.Histogram.observe t.m_ingest_latency
            (span
            +. match matched with Some (_, latency) -> latency | None -> 0.);
          journal_op t ~stage:"warehouse" (fun buf ->
              Codec.string buf "L";
              Codec.string buf d.bd_url;
              Codec.int buf (kind_tag d.bd_kind);
              Codec.string buf (Option.get d.bd_content);
              Codec.float buf (Xy_util.Clock.now t.clock));
          dispatch alert matched;
          if conclude then
            Xy_crawler.Crawler.conclude t.crawler ~url:d.bd_url
              ~changed:(status <> Loader.Unchanged));
      Option.iter Trace.finish d.bd_trace;
      commit_txn t
    in
    let finish_batch () = absorb_worker_obs t ctxs in
    match
      Parallel.run config ~obs:t.obs ~docs ~kill
        ~url_of:(fun d -> d.bd_url)
        ~worker ~shard_match ~drain ()
    with
    | stats ->
        finish_batch ();
        if stats.Parallel.p_deaths > 0 || stats.Parallel.p_steals > 0 then
          Log.debug (fun m ->
              m "parallel batch: %d death(s), %d steal(s) moving %d item(s)"
                stats.Parallel.p_deaths stats.Parallel.p_steals
                stats.Parallel.p_stolen)
    | exception e ->
        (* a [crash_point] fired in the drainer: every domain has
           still been joined — account the workers' metrics before
           the crash propagates *)
        finish_batch ();
        raise e
  end

(* Public batch entry (bench, tests): the crawler is not involved, so
   fetched-state bookkeeping ([conclude]) is skipped. *)
let ingest_batch t docs = process_batch t ~conclude:false docs

(* Xyleme monitors itself: render the current metrics snapshot and
   trace summary as XML and push them through the ordinary ingest
   path, as if fetched from [xyleme://self/].  Health subscriptions
   then ride the unmodified language/alerters/MQP/reporter. *)
let inject_self_monitor t =
  let snapshot = Obs.snapshot t.obs in
  let health =
    ingest t ~url:Self_monitor.health_url
      ~content:(Self_monitor.health_content ~snapshot)
      ~kind:Loader.Xml
  in
  let traces =
    ingest t ~url:Self_monitor.traces_url
      ~content:(Self_monitor.traces_content t.tracer)
      ~kind:Loader.Xml
  in
  (health, traces)

(* Evaluate the SLO objectives against the live metrics and ingest an
   SLO document for every objective whose status flipped (first
   evaluation included).  The document rides the ordinary pipeline —
   subscriptions on [xyleme://self/slo/] do the actual alerting — and
   the ingest journals like any other, so replay needs no SLO logic.
   Engine window state itself is in-memory only: a restored run
   re-fills its windows from the carried cumulative metrics. *)
let evaluate_slos t =
  match t.slo with
  | None -> ()
  | Some engine ->
      let now = Xy_util.Clock.now t.clock in
      let reports = Slo.tick engine ~now (Obs.snapshot t.obs) in
      List.iter
        (fun (r : Slo.report) ->
          let name = r.Slo.r_objective.Slo.o_name in
          if Hashtbl.find_opt t.slo_breached name <> Some r.Slo.r_breached
          then begin
            Hashtbl.replace t.slo_breached name r.Slo.r_breached;
            if r.Slo.r_breached then
              Log.warn (fun m ->
                  m "SLO %s breached: fast burn %.2f, slow burn %.2f" name
                    r.Slo.r_fast_burn r.Slo.r_slow_burn)
            else Log.info (fun m -> m "SLO %s ok" name);
            ignore
              (ingest t ~url:(Self_monitor.slo_url name)
                 ~content:(Self_monitor.slo_content r)
                 ~kind:Loader.Xml)
          end)
        reports

let slo_reports t =
  match t.slo with None -> [] | Some engine -> Slo.reports engine

let discover t = Xy_crawler.Crawler.discover t.crawler

(* ------------------------------------------------------------------ *)
(* Background log compaction.  The subscription log and the report
   ledger used to be compacted wholesale inside [checkpoint] — a
   multi-hundred-millisecond stall at 10^5 subscriptions.  Instead, a
   bounded slice of the rewrite runs at the end of every crawl step,
   one task at a time. *)

let maintenance_budget = 2048
let compaction_min_bytes = 64 * 1024

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

let maintenance_step t =
  if t.durable <> None then
    match t.maintenance with
    | Some (Subscription_compaction task) -> (
        match Manager.compaction_step task ~budget:maintenance_budget with
        | Persist.Compaction.Running -> ()
        | Persist.Compaction.Finished dropped ->
            t.compacted_since_checkpoint <-
              t.compacted_since_checkpoint + dropped;
            t.persist_floor <- Manager.persist_size (manager t);
            t.maintenance <- None
        | Persist.Compaction.Abandoned -> t.maintenance <- None)
    | Some (Ledger_compaction task) -> (
        match Sink.Ledger_compaction.step task ~budget:maintenance_budget with
        | Sink.Ledger_compaction.Running -> ()
        | Sink.Ledger_compaction.Finished dropped ->
            t.compacted_since_checkpoint <-
              t.compacted_since_checkpoint + dropped;
            t.ledger_floor <-
              Option.fold ~none:0 ~some:file_size (report_ledger_path t);
            t.maintenance <- None
        | Sink.Ledger_compaction.Abandoned -> t.maintenance <- None)
    | None -> (
        (* start a task only once a log both exceeds the floor size
           and has doubled since its last compaction *)
        let due size floor = size >= compaction_min_bytes && size >= 2 * floor in
        let persist_size = Manager.persist_size (manager t) in
        if due persist_size t.persist_floor then
          t.maintenance <-
            Option.map
              (fun task -> Subscription_compaction task)
              (Manager.compaction_start (manager t))
        else
          match report_ledger_path t with
          | Some path when due (file_size path) t.ledger_floor ->
              t.maintenance <-
                Option.map
                  (fun task -> Ledger_compaction task)
                  (Sink.Ledger_compaction.start path)
          | Some _ | None -> ())

(* One crawl step, decomposed into transactions so that a kill at any
   boundary loses at most the unit in progress:

   - the pop is one transaction (a batch marked in-flight atomically);
   - each fetch is one transaction (failure handling included);
   - each ingest (load + notifications + conclude) is one transaction;
   - the closing step marker is one transaction.

   Documents fetched but not yet ingested at the kill are re-queued by
   restore at their original deadline ([rearm_in_flight]) — a crash
   can delay a page's processing, never lose it. *)
let crawl_step t ~limit =
  crash_point t "crawl-start";
  let urls = Xy_crawler.Fetch_queue.pop_due t.queue ~limit in
  commit_txn t;
  let fetches =
    List.filter_map
      (fun url ->
        crash_point t ("fetch:" ^ url);
        let fetch = Xy_crawler.Crawler.fetch_one t.crawler ~url in
        commit_txn t;
        fetch)
      urls
  in
  let docs =
    List.map
      (fun fetch ->
        {
          bd_url = fetch.Xy_crawler.Crawler.url;
          bd_content = fetch.Xy_crawler.Crawler.content;
          bd_kind =
            (match fetch.Xy_crawler.Crawler.kind with
            | Some Xy_crawler.Synthetic_web.Xml_page -> Loader.Xml
            | Some Xy_crawler.Synthetic_web.Html_page -> Loader.Html
            | None -> Loader.Auto);
          bd_trace = fetch.Xy_crawler.Crawler.trace;
          bd_birth = fetch.Xy_crawler.Crawler.birth;
        })
      fetches
  in
  process_batch t ~conclude:true docs;
  crash_point t "step-end";
  (* the staleness watermark reflects what this step left undetected *)
  Xy_crawler.Crawler.update_watermark t.crawler;
  t.steps_done <- t.steps_done + 1;
  t.mid_step <- false;
  journal_op t ~stage:"system" (fun buf ->
      Codec.string buf "S";
      Codec.int buf t.steps_done;
      Codec.float buf (Xy_util.Clock.now t.clock));
  commit_txn t;
  maintenance_step t;
  (* drain client acks promptly so delivery windows reopen between
     steps, not only at the next advance *)
  ignore (serve_pump t);
  List.length fetches

let advance t ~seconds =
  (* wire mutations queued since the last step land before the clock
     moves, so a SUBSCRIBE acknowledged over the wire is armed for the
     very next tick *)
  ignore (serve_pump t);
  crash_point t "advance";
  (* The [A] op leads the transaction: replay advances the clock and
     re-evolves the web (its PRNG stream position is part of the
     snapshot, so the draws repeat exactly) before applying the tick
     effects journaled after it. *)
  journal_op t ~stage:"system" (fun buf ->
      Codec.string buf "A";
      Codec.float buf seconds);
  Xy_util.Clock.advance t.clock seconds;
  (* the evolve mutates web state under a *system* op (replay re-draws
     it from the journaled advance), so the web stage must be marked
     dirty by hand or checkpoints would carry a stale section forward;
     the metrics mutate under every transaction, so the carried [obs]
     section is always re-encoded at the next checkpoint *)
  Option.iter
    (fun d ->
      Durable.mark_dirty d "web";
      Durable.mark_dirty d "obs")
    t.durable;
  ignore (Xy_crawler.Synthetic_web.evolve t.web ~elapsed:seconds);
  (* newly born pages become crawlable *)
  discover t;
  (* ages the oldest still-undetected change just produced *)
  Xy_crawler.Crawler.update_watermark t.crawler;
  Xy_trigger.Trigger_engine.tick t.trigger;
  Xy_reporter.Reporter.tick t.reporter;
  (match t.self_monitor_period, t.self_monitor_deadline with
  | Some period, Some deadline ->
      let now = Xy_util.Clock.now t.clock in
      if now >= deadline then begin
        (* One injection per advance even after a long jump — health
           documents describe the present, there is no backlog to
           replay. *)
        let rec next d = if d <= now then next (d +. period) else d in
        t.self_monitor_deadline <- Some (next deadline);
        journal_self_monitor_deadline t;
        ignore (inject_self_monitor t)
      end
  | _ -> ());
  evaluate_slos t;
  t.mid_step <- true;
  commit_txn t

let run t ~days ~step ~fetch_limit =
  discover t;
  let total = days *. 86400. in
  let steps = int_of_float (ceil (total /. step)) in
  for _ = 1 to steps do
    advance t ~seconds:step;
    ignore (crawl_step t ~limit:fetch_limit)
  done;
  (* an orderly completion must not leave the last group-commit batch
     sitting in memory — a restore of this directory would miss it *)
  Option.iter Durable.barrier t.durable

(* ------------------------------------------------------------------ *)
(* Checkpoint & restore *)

type checkpoint_info = { generation : int; compacted_records : int }

let checkpoint ?force_full t =
  match t.durable with
  | None -> invalid_arg "Xyleme.checkpoint: created without ~durable_dir"
  | Some d ->
      Durable.checkpoint ?force_full d ~snapshot:(snapshot_sections t);
      let compacted_records = t.compacted_since_checkpoint in
      t.compacted_since_checkpoint <- 0;
      { generation = Durable.generation d; compacted_records }

(* Same schedule as [run], but driven by the journaled position, so a
   restored system picks up exactly where the killed one stopped: a
   committed advance is not repeated ([mid_step]), completed steps are
   not re-crawled ([steps_done]). *)
let run_resumable ?(checkpoint_every = 0) t ~days ~step ~fetch_limit =
  discover t;
  let total = days *. 86400. in
  let steps = int_of_float (ceil (total /. step)) in
  while t.steps_done < steps do
    if not t.mid_step then advance t ~seconds:step;
    ignore (crawl_step t ~limit:fetch_limit);
    if
      checkpoint_every > 0
      && t.steps_done mod checkpoint_every = 0
      && t.durable <> None
    then ignore (checkpoint t)
  done;
  Option.iter Durable.barrier t.durable

let apply_system_op t payload =
  let r = Codec.reader payload in
  (match Codec.read_string r with
  | "A" ->
      let seconds = Codec.read_float r in
      Xy_util.Clock.advance t.clock seconds;
      ignore (Xy_crawler.Synthetic_web.evolve t.web ~elapsed:seconds);
      t.mid_step <- true
  | "S" ->
      t.steps_done <- Codec.read_int r;
      Xy_util.Clock.set t.clock (Codec.read_float r);
      t.mid_step <- false
  | "c" ->
      t.alerts_sent <- Codec.read_int r;
      let alerts_processed = Codec.read_int r in
      let notifications_emitted = Codec.read_int r in
      Mqp.restore_counters t.mqp ~alerts_processed ~notifications_emitted
  | "M" ->
      t.self_monitor_deadline <-
        (if Codec.read_bool r then Some (Codec.read_float r) else None)
  | tag -> raise (Codec.Malformed ("unknown system op " ^ tag)));
  Codec.expect_end r

(* Warehouse ops replay through the Loader alone — no alerter chain,
   no MQP, no reporter: those stages replay their own journaled ops,
   so the restored pipeline cannot double-notify. *)
let apply_warehouse_op t payload =
  let r = Codec.reader payload in
  (match Codec.read_string r with
  | "L" ->
      let url = Codec.read_string r in
      let kind = kind_of_tag (Codec.read_int r) in
      let content = Codec.read_string r in
      let at = Codec.read_float r in
      Xy_util.Clock.set t.clock at;
      (try ignore (Loader.load t.loader ~url ~content ~kind)
       with Loader.Rejected _ -> ())
  | "X" ->
      let url = Codec.read_string r in
      let at = Codec.read_float r in
      Xy_util.Clock.set t.clock at;
      ignore (Loader.delete t.loader ~url)
  | "D" ->
      (* batch DOCID pre-allocation: replay in journal order keeps the
         numbering identical to the run that wrote it *)
      let url = Codec.read_string r in
      ignore (Store.allocate_docid t.store ~url)
  | tag -> raise (Codec.Malformed ("unknown warehouse op " ^ tag)));
  Codec.expect_end r

let apply_replay_op t { Durable.stage; payload } =
  match stage with
  | "queue" -> Xy_crawler.Fetch_queue.apply_op t.queue payload
  | "crawler" -> Xy_crawler.Crawler.apply_op t.crawler payload
  | "trigger" -> Xy_trigger.Trigger_engine.apply_op t.trigger payload
  | "reporter" -> Xy_reporter.Reporter.apply_op t.reporter payload
  | "fault" -> Fault.apply_op t.faults payload
  | "warehouse" -> apply_warehouse_op t payload
  | "system" -> apply_system_op t payload
  | "serve" -> (
      match !(t.serve_cell) with
      | Some s -> Serve.apply_op s payload
      | None -> () (* restored without a serving surface: drop *))
  | other -> raise (Codec.Malformed ("unknown stage " ^ other))

type restore_info = {
  generation : int;
  subscriptions_recovered : int;
  txns_replayed : int;
  wal_tail : Durable.tail;
  requeued_fetches : int;
  redelivered_reports : int;
}

let restore ?seed ?algorithm ?policy ?sink ?web ?obs ?tracer
    ?self_monitor_period ?fault_plan ?retry ?slos ?parallel ?serve_port
    ?serve_config ?sync_every ?segment_bytes ~dir () =
  let serve_config =
    match (serve_config, serve_port) with
    | (Some _ as c), _ -> c
    | None, Some port -> Some (Serve.config ~port ())
    | None, None -> None
  in
  let config = durable_config ?sync_every ?segment_bytes () in
  match Durable.open_existing ~config dir with
  | None -> Error (Printf.sprintf "no durable run in %s (missing MANIFEST)" dir)
  | Some d -> (
      (* before the closing checkpoint below: delta-eligible stages
         must be known for it to keep their WAL chains instead of
         re-encoding them *)
      Durable.set_wal_carried d wal_carried_stages;
      match Durable.load_latest d with
      | Error e -> Error ("snapshot unreadable: " ^ e)
      | Ok (sections, txns, wal_tail) -> (
          let t =
            make ?seed ?algorithm ?policy ?sink ?web ?obs ?tracer
              ?self_monitor_period ?fault_plan ?retry ?slos ?parallel
              ?serve_config ~durable:(Some d) ()
          in
          (* 1. Structure: replay the subscription log.  This rebuilds
             specs, recipients, triggers, atomic/complex events — at
             the recovery clock, so dynamic timing state is wrong
             until the snapshot overrides it. *)
          let subscriptions_recovered =
            Manager.recover (manager t) (Durable.subscription_log_path d)
          in
          match
            (* 2. State: the snapshot's sections, then 3. the WAL's
               committed transactions, in commit order. *)
            let apply name f =
              match List.assoc_opt name sections with
              | Some payload -> f payload
              | None -> ()
            in
            apply "system" (decode_system t);
            apply "obs" (decode_obs t);
            apply "fault" (Fault.decode_snapshot t.faults);
            apply "web" (Xy_crawler.Synthetic_web.decode_snapshot t.web);
            apply "warehouse" (Store.decode_snapshot t.store);
            apply "queue" (Xy_crawler.Fetch_queue.decode_snapshot t.queue);
            apply "crawler" (Xy_crawler.Crawler.decode_snapshot t.crawler);
            apply "trigger" (Xy_trigger.Trigger_engine.decode_snapshot t.trigger);
            apply "reporter" (Xy_reporter.Reporter.decode_snapshot t.reporter);
            (match !(t.serve_cell) with
            | Some s -> apply "serve" (Serve.decode_snapshot s)
            | None -> ());
            List.iter (List.iter (apply_replay_op t)) txns
          with
          | exception Codec.Malformed m ->
              Error ("damaged durable state: " ^ m)
          | () ->
              (* this run survived one more restart; the counter is
                 carried in the [obs] section just applied, so it
                 counts restarts over the directory's whole life *)
              Obs.Counter.incr t.m_restarts;
              (* 4. Documents popped but never concluded go back on
                 the schedule at their original deadline. *)
              let requeued_fetches =
                Xy_crawler.Fetch_queue.rearm_in_flight t.queue
              in
              (* 5. Checkpoint immediately: the old generation's WAL
                 may end torn, and nothing must ever append after a
                 torn record.  This also opens the new generation's
                 WAL, which journaling needs.  Forced full: recovery
                 mutations (replay, re-arming) are not journaled, so
                 no carried-forward reference can be trusted here —
                 delta sections are the exception, their stages'
                 mutations are journaled by contract, so the closing
                 checkpoint keeps their WAL chains instead of paying
                 to re-encode the largest stage. *)
              Durable.checkpoint ~force_full:true d
                ~snapshot:(snapshot_sections t);
              attach_hooks t d;
              (* 6. At-least-once: re-send committed, unacked delivery
                 intents (consumers dedup by seq). *)
              (* Committed wire deliveries are already back in the
                 pending store (snapshot + replay); the reporter's
                 redelivery below re-offers the rest through the tee,
                 where the store dedups by seq.  Only then open the
                 socket. *)
              let redelivered_reports =
                Xy_reporter.Reporter.redeliver_pending t.reporter
              in
              serve_listen t;
              Log.info (fun m ->
                  m
                    "restored %s: generation %d, %d subscription(s), %d \
                     txn(s) replayed, %d fetch(es) re-queued, %d report(s) \
                     re-delivered"
                    dir (Durable.generation d) subscriptions_recovered
                    (List.length txns) requeued_fetches redelivered_reports);
              Ok
                ( t,
                  {
                    generation = Durable.generation d;
                    subscriptions_recovered;
                    txns_replayed = List.length txns;
                    wal_tail;
                    requeued_fetches;
                    redelivered_reports;
                  } )))

type stats = {
  documents_fetched : int;
  documents_stored : int;
  alerts_sent : int;
  notifications : int;
  reports : int;
  complex_events : int;
  atomic_events : int;
}

let stats t =
  let mqp_stats = Mqp.stats t.mqp in
  let reporter_stats = Xy_reporter.Reporter.stats t.reporter in
  {
    documents_fetched = Xy_crawler.Crawler.fetches t.crawler;
    documents_stored = Store.document_count t.store;
    alerts_sent = t.alerts_sent;
    notifications = mqp_stats.Mqp.notifications_emitted;
    reports = reporter_stats.Xy_reporter.Reporter.reports_sent;
    complex_events = mqp_stats.Mqp.complex_events;
    atomic_events = Xy_events.Registry.cardinal t.registry;
  }
