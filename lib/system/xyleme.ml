let log_src = Logs.Src.create "xyleme" ~doc:"Xyleme monitoring pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module T = Xy_xml.Types
module Loader = Xy_warehouse.Loader
module Store = Xy_warehouse.Store
module Chain = Xy_alerters.Chain
module Alert = Xy_alerters.Alert
module Mqp = Xy_core.Mqp
module Manager = Xy_submgr.Manager
module Obs = Xy_obs.Obs
module Trace = Xy_trace.Trace
module Fault = Xy_fault.Fault

type t = {
  obs : Obs.t;
  tracer : Trace.t;
  faults : Fault.t;
  clock : Xy_util.Clock.t;
  registry : Xy_events.Registry.t;
  mqp : Mqp.t;
  reporter : Xy_reporter.Reporter.t;
  trigger : Xy_trigger.Trigger_engine.t;
  store : Store.t;
  domains : Xy_warehouse.Domains.t;
  loader : Loader.t;
  chain : Chain.t;
  web : Xy_crawler.Synthetic_web.t;
  queue : Xy_crawler.Fetch_queue.t;
  crawler : Xy_crawler.Crawler.t;
  mutable manager : Manager.t option;  (** set right after creation *)
  self_monitor_period : float option;
  mutable self_monitor_deadline : float option;
  mutable alerts_sent : int;
  m_ingested : Obs.Counter.t;
  m_ingest_latency : Obs.Histogram.t;
  m_quarantined : Obs.Counter.t;
}

let default_domains () =
  let domains = Xy_warehouse.Domains.create () in
  Xy_warehouse.Domains.register_keyword domains ~keyword:"museum" ~domain:"culture";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"painting" ~domain:"culture";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"catalog" ~domain:"commerce";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"product" ~domain:"commerce";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"team" ~domain:"people";
  Xy_warehouse.Domains.register_keyword domains ~keyword:"Member" ~domain:"people";
  domains

let warehouse_view t =
  let by_domain : (string, T.node list ref) Hashtbl.t = Hashtbl.create 8 in
  let push domain nodes =
    match Hashtbl.find_opt by_domain domain with
    | Some existing -> existing := !existing @ nodes
    | None -> Hashtbl.replace by_domain domain (ref nodes)
  in
  Store.iter
    (fun entry ->
      match entry.Store.tree with
      | None -> ()
      | Some tree ->
          let root = Xy_xml.Xid.strip tree in
          let domain =
            Option.value ~default:"unclassified"
              entry.Store.meta.Xy_warehouse.Meta.domain
          in
          (* Splice when the document root already carries the domain
             name, so that [culture/museum] resolves. *)
          if root.T.tag = domain then push domain root.T.children
          else push domain [ T.Element root ])
    t.store;
  let children =
    Hashtbl.fold
      (fun domain nodes acc -> (domain, T.el domain !nodes) :: acc)
      by_domain []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  T.element "warehouse" children

let create ?(seed = 1) ?algorithm ?policy ?persist_path ?sink ?web ?obs ?tracer
    ?self_monitor_period ?fault_plan ?retry () =
  (* Wall-clock latencies: xy_obs itself is zero-dependency, so the
     high-resolution timer is installed here, where unix is linked. *)
  Obs.set_timer Unix.gettimeofday;
  Trace.set_timer Unix.gettimeofday;
  let obs = match obs with Some o -> o | None -> Obs.create () in
  (* The failure schedule shares the system seed: one (seed, spec)
     pair pins the whole run, faults included. *)
  let faults =
    match fault_plan with
    | None | Some [] -> Fault.none
    | Some spec -> Fault.create ~obs ~seed spec
  in
  let clock = Xy_util.Clock.create () in
  let tracer =
    match tracer with Some tr -> tr | None -> Trace.create ~seed ()
  in
  (* Span virtual timestamps follow this system's simulation clock. *)
  Trace.set_virtual_clock tracer (fun () -> Xy_util.Clock.now clock);
  let registry = Xy_events.Registry.create () in
  let mqp = Mqp.create ?algorithm ~obs () in
  let sink = match sink with Some s -> s | None -> Xy_reporter.Sink.null () in
  let reporter = Xy_reporter.Reporter.create ~obs ~clock ~sink () in
  let trigger = Xy_trigger.Trigger_engine.create ~obs ~clock () in
  let store = Store.create () in
  let domains = default_domains () in
  let loader = Loader.create ~domains ~obs ~store ~clock () in
  let chain = Chain.create ~obs registry in
  let web =
    match web with
    | Some w -> w
    | None -> Xy_crawler.Synthetic_web.generate ~seed ~sites:4 ~pages_per_site:5 ()
  in
  let queue = Xy_crawler.Fetch_queue.create ~obs ~clock () in
  let crawler =
    Xy_crawler.Crawler.create ~obs ~tracer ~faults ?retry ~web ~queue ()
  in
  let t =
    {
      obs;
      tracer;
      faults;
      clock;
      registry;
      mqp;
      reporter;
      trigger;
      store;
      domains;
      loader;
      chain;
      web;
      queue;
      crawler;
      manager = None;
      self_monitor_period;
      self_monitor_deadline =
        Option.map (fun p -> Xy_util.Clock.now clock +. p) self_monitor_period;
      alerts_sent = 0;
      m_ingested = Obs.counter obs ~stage:"system" "ingested";
      m_ingest_latency = Obs.histogram obs ~stage:"system" "ingest_latency";
      m_quarantined = Obs.counter obs ~stage:"fault" "quarantined";
    }
  in
  let persist =
    Option.map (Xy_submgr.Persist.open_log ~faults) persist_path
  in
  let run_query query =
    Xy_query.Eval.eval query (Xy_query.Eval.env (warehouse_view t))
  in
  let manager =
    Manager.create ?policy ?persist ~obs ~clock ~registry ~mqp ~trigger
      ~reporter ~run_query ()
  in
  t.manager <- Some manager;
  t

let obs t = t.obs
let tracer t = t.tracer
let faults t = t.faults
let clock t = t.clock
let registry t = t.registry
let mqp t = t.mqp
let reporter t = t.reporter
let trigger t = t.trigger
let manager t = Option.get t.manager
let store t = t.store
let loader t = t.loader
let domains t = t.domains
let chain t = t.chain
let web t = t.web
let queue t = t.queue

let apply_refresh_statements t =
  List.iter
    (fun (url, period) -> Xy_crawler.Fetch_queue.boost t.queue ~url ~period)
    (Manager.refresh_statements (manager t))

let subscribe t ~owner ~text =
  let result = Manager.subscribe (manager t) ~owner ~text in
  (match result with
  | Ok name ->
      Log.info (fun m -> m "subscribed %s (owner %s)" name owner);
      apply_refresh_statements t
  | Error e ->
      Log.warn (fun m -> m "subscription rejected: %s" (Manager.error_to_string e)));
  result

let unsubscribe t ~name = Manager.unsubscribe (manager t) ~name

let update t ~name ~owner ~text =
  let result = Manager.update (manager t) ~name ~owner ~text in
  (match result with Ok () -> apply_refresh_statements t | Error _ -> ());
  result

let recover t path = Manager.recover (manager t) path

type ingest_outcome = {
  status : Loader.status;
  alerted : bool;
  matched : int list;
}

let ingest ?trace t ~url ~content ~kind =
  Obs.Counter.incr t.m_ingested;
  Obs.Histogram.time t.m_ingest_latency @@ fun () ->
  let result =
    Trace.wrap trace ~stage:"warehouse" ~name:"load" @@ fun () ->
    Loader.load t.loader ~url ~content ~kind
  in
  match Chain.process ?trace t.chain ~result ~content with
  | None -> { status = result.Loader.status; alerted = false; matched = [] }
  | Some alert ->
      t.alerts_sent <- t.alerts_sent + 1;
      let matched =
        Mqp.process t.mqp
          {
            Mqp.url = alert.Alert.url;
            events = alert.Alert.events;
            payload = Alert.payload_string alert;
            trace;
          }
      in
      if matched <> [] then
        Log.debug (fun m ->
            m "%s matched %d complex event(s)" url (List.length matched));
      { status = result.Loader.status; alerted = true; matched }

let ingest_missing ?trace t ~url =
  let tree =
    Option.bind (Store.find t.store url) (fun entry -> entry.Store.tree)
  in
  match Loader.delete t.loader ~url with
  | None -> ()
  | Some meta -> (
      match Chain.process_deleted ?trace t.chain ~meta ~tree with
      | None -> ()
      | Some alert ->
          t.alerts_sent <- t.alerts_sent + 1;
          ignore
            (Mqp.process t.mqp
               {
                 Mqp.url = alert.Alert.url;
                 events = alert.Alert.events;
                 payload = Alert.payload_string alert;
                 trace;
               }))

(* Xyleme monitors itself: render the current metrics snapshot and
   trace summary as XML and push them through the ordinary ingest
   path, as if fetched from [xyleme://self/].  Health subscriptions
   then ride the unmodified language/alerters/MQP/reporter. *)
let inject_self_monitor t =
  let snapshot = Obs.snapshot t.obs in
  let health =
    ingest t ~url:Self_monitor.health_url
      ~content:(Self_monitor.health_content ~snapshot)
      ~kind:Loader.Xml
  in
  let traces =
    ingest t ~url:Self_monitor.traces_url
      ~content:(Self_monitor.traces_content t.tracer)
      ~kind:Loader.Xml
  in
  (health, traces)

let discover t = Xy_crawler.Crawler.discover t.crawler

let crawl_step t ~limit =
  let fetches = Xy_crawler.Crawler.step t.crawler ~limit in
  List.iter
    (fun fetch ->
      let url = fetch.Xy_crawler.Crawler.url in
      let trace = fetch.Xy_crawler.Crawler.trace in
      (match fetch.Xy_crawler.Crawler.content with
      | None -> ingest_missing ?trace t ~url
      | Some content ->
          let kind =
            match fetch.Xy_crawler.Crawler.kind with
            | Some Xy_crawler.Synthetic_web.Xml_page -> Loader.Xml
            | Some Xy_crawler.Synthetic_web.Html_page -> Loader.Html
            | None -> Loader.Auto
          in
          (* Unparseable documents are quarantined, not fatal: the
             rejection is counted, logged and the crawl goes on, so a
             corrupted page cannot take the pipeline down. *)
          let outcome =
            match ingest ?trace t ~url ~content ~kind with
            | outcome -> Some outcome
            | exception Loader.Rejected reason ->
                Obs.Counter.incr t.m_quarantined;
                Log.warn (fun m -> m "quarantined %s: %s" url reason);
                None
          in
          let changed =
            match outcome with
            | Some { status = Loader.Unchanged; _ } -> false
            | Some _ | None -> true
          in
          Xy_crawler.Crawler.conclude t.crawler ~url ~changed);
      (* The document's synchronous journey ends here; reports held
         back by buffering fire from [tick] without attribution. *)
      Option.iter Trace.finish trace)
    fetches;
  List.length fetches

let advance t ~seconds =
  Xy_util.Clock.advance t.clock seconds;
  ignore (Xy_crawler.Synthetic_web.evolve t.web ~elapsed:seconds);
  (* newly born pages become crawlable *)
  discover t;
  Xy_trigger.Trigger_engine.tick t.trigger;
  Xy_reporter.Reporter.tick t.reporter;
  match t.self_monitor_period, t.self_monitor_deadline with
  | Some period, Some deadline ->
      let now = Xy_util.Clock.now t.clock in
      if now >= deadline then begin
        (* One injection per advance even after a long jump — health
           documents describe the present, there is no backlog to
           replay. *)
        let rec next d = if d <= now then next (d +. period) else d in
        t.self_monitor_deadline <- Some (next deadline);
        ignore (inject_self_monitor t)
      end
  | _ -> ()

let run t ~days ~step ~fetch_limit =
  discover t;
  let total = days *. 86400. in
  let steps = int_of_float (ceil (total /. step)) in
  for _ = 1 to steps do
    advance t ~seconds:step;
    ignore (crawl_step t ~limit:fetch_limit)
  done

type stats = {
  documents_fetched : int;
  documents_stored : int;
  alerts_sent : int;
  notifications : int;
  reports : int;
  complex_events : int;
  atomic_events : int;
}

let stats t =
  let mqp_stats = Mqp.stats t.mqp in
  let reporter_stats = Xy_reporter.Reporter.stats t.reporter in
  {
    documents_fetched = Xy_crawler.Crawler.fetches t.crawler;
    documents_stored = Store.document_count t.store;
    alerts_sent = t.alerts_sent;
    notifications = mqp_stats.Mqp.notifications_emitted;
    reports = reporter_stats.Xy_reporter.Reporter.reports_sent;
    complex_events = mqp_stats.Mqp.complex_events;
    atomic_events = Xy_events.Registry.cardinal t.registry;
  }
