(** The distributed monitoring pipeline (paper Figure 3 + §4.2).

    Runs the alert flow across OCaml domains connected by {!Bus}
    queues, reproducing the deployment the paper describes: the
    document flow is split across several Monitoring Query Processors
    ("assign a Monitoring Query Processor to each block of the
    partition") whose notification streams converge on one Reporter
    stage.

    {v
      feeder ──▶ [bus]──▶ MQP domain 0 ─┐
             ──▶ [bus]──▶ MQP domain 1 ─┼──▶ [bus] ──▶ collector
             ──▶ [bus]──▶ ...          ─┘
    v}

    The functional result is identical to processing the alerts on a
    single processor (verified by the test suite); wall-clock scaling
    depends on available cores. *)

(** How alerts are routed to processor partitions. *)
type axis =
  | Split_documents  (** every partition holds all subscriptions *)
  | Split_subscriptions  (** every alert visits all partitions *)

type result = {
  notifications : (string * int) list;
      (** (document url, complex event id), in no particular order *)
  alerts_processed : int;
  worker_deaths : int;  (** [worker] faults fired (also counted as
                            [fault/worker_deaths] in [obs]) *)
  worker_respawns : int;  (** replacement domains spawned *)
  wall_seconds : float;
}

(** [run ~axis ~partitions ~subscriptions ~alerts ()] builds one
    {!Xy_core.Mqp} per partition (loaded per [axis]), spawns one
    domain per partition plus a collector, streams [alerts] through
    and returns the collected notification multiset.  Workers push
    one [(url, ids)] batch per processed alert onto the shared
    outbox — not one message per notification — so the outbox is
    contended once per document even at high match rates.

    Pipeline metrics (routed alerts, emitted notifications, partition
    gauge, per-domain worker-span histogram, plus the [bus] stage's
    inbox/outbox queues and each partition's [mqp] stage) accumulate
    into [obs] (default {!Xy_obs.Obs.default}) — the registry is
    domain-safe, so workers on separate cores report concurrently.

    [faults] arms the [worker] failure point: a worker domain dies
    before processing an alert it has taken.  The supervisor respawns
    a fresh domain on the same inbox, handing the in-flight alert
    over, so the notification multiset matches the fault-free run.
    Respawns happen at join time (after feeding): a fault plan whose
    per-inbox backlog can exceed [capacity] (default 256) while every
    worker for that inbox is dead would block the feeder, so size
    [capacity] above the largest expected burst when injecting worker
    deaths. *)
val run :
  ?algorithm:Xy_core.Mqp.algorithm ->
  ?obs:Xy_obs.Obs.t ->
  ?faults:Xy_fault.Fault.t ->
  ?capacity:int ->
  axis:axis ->
  partitions:int ->
  subscriptions:(int * Xy_events.Event_set.t) list ->
  alerts:Xy_core.Mqp.alert list ->
  unit ->
  result
