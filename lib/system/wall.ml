(* [Unix.gettimeofday] can step backwards (NTP); latency math
   subtracts timestamps, so the timer installed into [Obs]/[Trace] is
   a CAS ratchet that never retreats.  (The libraries' own default,
   [Sys.time], measures CPU seconds — time blocked in I/O was
   invisible.) *)
let monotonic =
  let last = Atomic.make neg_infinity in
  let rec ratchet now =
    let prev = Atomic.get last in
    if now >= prev then
      if Atomic.compare_and_set last prev now then now else ratchet now
    else prev
  in
  fun () -> ratchet (Unix.gettimeofday ())

(* [Obs.set_timer]/[Trace.set_timer] mutate process-global state;
   installing them from every [Distributed.run] or system [make] was a
   data race against concurrently running pipelines.  One atomic flag
   makes installation happen exactly once per process, no matter how
   many systems or distributed runs start. *)
let installed = Atomic.make false

let install_timers () =
  if not (Atomic.exchange installed true) then begin
    Xy_obs.Obs.set_timer monotonic;
    Xy_trace.Trace.set_timer monotonic
  end
