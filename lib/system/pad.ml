(* Per-worker counters bumped from different domains used to sit in
   one dense [int array] — adjacent slots share a cache line, so every
   increment invalidated the line for every other worker (false
   sharing).  Spreading the slots a cache line apart keeps each
   worker's hot word private.  64-byte lines / 8-byte words = stride
   8. *)

let stride = 8

type t = { cells : int array; slots : int }

let create slots =
  if slots <= 0 then invalid_arg "Pad.create: slots <= 0";
  { cells = Array.make (slots * stride) 0; slots }

let add t slot n = t.cells.(slot * stride) <- t.cells.(slot * stride) + n
let incr t slot = add t slot 1
let get t slot = t.cells.(slot * stride)

let total t =
  let sum = ref 0 in
  for slot = 0 to t.slots - 1 do
    sum := !sum + t.cells.(slot * stride)
  done;
  !sum
