(** Process-wide wall clock for the observability layer.

    [Obs] and [Trace] default to [Sys.time] (CPU seconds); the system
    wants wall time, monotonic under NTP steps.  Both [set_timer]
    calls mutate process-global state, so installation lives here and
    runs exactly once per process — every entry point
    ({!Xyleme.create}, {!Distributed.run}, benches) calls
    {!install_timers} idempotently instead of re-installing. *)

(** Wall-clock seconds, ratcheted so it never retreats (CAS on the
    last value returned, shared across domains). *)
val monotonic : unit -> float

(** Install {!monotonic} into [Obs] and [Trace].  First call wins;
    subsequent calls (any domain) are no-ops. *)
val install_timers : unit -> unit
