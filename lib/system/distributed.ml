module Mqp = Xy_core.Mqp
module Obs = Xy_obs.Obs
module Fault = Xy_fault.Fault

type axis = Split_documents | Split_subscriptions

let stage = "distributed"

type result = {
  notifications : (string * int) list;
  alerts_processed : int;
  worker_deaths : int;
  worker_respawns : int;
  wall_seconds : float;
}

(* A worker domain either drains its inbox to the end or "dies" (the
   [worker] failure point) holding the alert it had just taken; the
   supervisor respawns a fresh domain on the same inbox, handing the
   in-flight alert over so no work is lost. *)
type worker_exit = Finished | Died of Mqp.alert

let run ?algorithm ?(obs = Obs.default) ?(faults = Fault.none)
    ?(capacity = 256) ~axis ~partitions ~subscriptions ~alerts () =
  if partitions <= 0 then invalid_arg "Distributed.run: partitions <= 0";
  Wall.install_timers ();
  let m_routed = Obs.counter obs ~stage "alerts_routed" in
  let m_notifications = Obs.counter obs ~stage "notifications" in
  let m_partitions = Obs.gauge obs ~stage "partitions" in
  let m_worker_span = Obs.histogram obs ~stage "worker_span" in
  let m_deaths = Obs.counter obs ~stage:"fault" "worker_deaths" in
  let m_respawns = Obs.counter obs ~stage:"fault" "worker_respawns" in
  Obs.Gauge.set_int m_partitions partitions;
  (* Build the per-partition processors (outside the timed region —
     structure construction is deployment, not steady state). *)
  let mqps =
    Array.init partitions (fun slot ->
        let mqp = Mqp.create ?algorithm ~obs () in
        List.iter
          (fun (id, events) ->
            match axis with
            | Split_documents -> Mqp.subscribe mqp ~id events
            | Split_subscriptions ->
                if id mod partitions = slot then Mqp.subscribe mqp ~id events)
          subscriptions;
        mqp)
  in
  let inboxes : Mqp.alert Bus.t array =
    Array.init partitions (fun _ ->
        Bus.create ~capacity ~obs ~name:"inbox"
          ~trace_of:(fun alert -> alert.Mqp.trace)
          ())
  in
  (* One outbox message per processed alert carrying the whole match
     batch ("all the complex events are detected on a document
     simultaneously and thus are sent ... in one batch"), not one push
     per notification: at high match rates the per-notification push
     made the shared outbox the contention point. *)
  let outbox : (string * int list) Bus.t =
    Bus.create ~capacity:1024 ~obs ~name:"outbox" ()
  in
  (* Padded: each worker bumps its own slot from its own domain; a
     dense array put the slots on shared cache lines. *)
  let processed = Pad.create partitions in
  let deaths = ref 0 in
  let respawns = ref 0 in
  let start = Unix.gettimeofday () in
  (* Processor domains.  [carried] is the alert a predecessor died
     holding: the respawned worker processes it before draining the
     inbox, so a death redistributes work instead of losing it. *)
  let spawn_worker slot ~carried =
    Domain.spawn (fun () ->
        Obs.Histogram.time m_worker_span @@ fun () ->
        let mqp = mqps.(slot) in
        let process alert =
          Pad.incr processed slot;
          match Mqp.process mqp alert with
          | [] -> ()
          | ids ->
              Obs.Counter.add m_notifications (List.length ids);
              Bus.push outbox (alert.Mqp.url, ids)
        in
        let rec loop carried =
          let next =
            match carried with Some alert -> Some alert | None -> Bus.pop inboxes.(slot)
          in
          match next with
          | None -> Finished
          | Some alert ->
              if Fault.fire faults "worker" then begin
                Obs.Counter.incr m_deaths;
                Died alert
              end
              else begin
                process alert;
                loop None
              end
        in
        loop carried)
  in
  let workers =
    Array.init partitions (fun slot -> spawn_worker slot ~carried:None)
  in
  (* Collector domain. *)
  let collector =
    Domain.spawn (fun () ->
        let rec loop acc =
          match Bus.pop outbox with
          | None -> acc
          | Some (url, ids) ->
              loop (List.fold_left (fun acc id -> (url, id) :: acc) acc ids)
        in
        loop [])
  in
  (* Feeder: route per the axis. *)
  let route (alert : Mqp.alert) =
    Obs.Counter.incr m_routed;
    match axis with
    | Split_documents ->
        let slot = Xy_core.Partition.slot_of_url ~partitions alert.Mqp.url in
        Bus.push inboxes.(slot) alert
    | Split_subscriptions ->
        Array.iter (fun inbox -> Bus.push inbox alert) inboxes
  in
  List.iter route alerts;
  Array.iter Bus.close inboxes;
  (* Supervision: join each worker; a death hands its in-flight alert
     to a fresh domain on the same (closed, still-draining) inbox.
     Feeding has finished by now, so respawning at join time cannot
     starve a producer. *)
  let rec supervise slot domain =
    match Domain.join domain with
    | Finished -> ()
    | Died carried ->
        incr deaths;
        incr respawns;
        Obs.Counter.incr m_respawns;
        supervise slot (spawn_worker slot ~carried:(Some carried))
  in
  Array.iteri supervise workers;
  Bus.close outbox;
  let notifications = Domain.join collector in
  let wall_seconds = Unix.gettimeofday () -. start in
  let alerts_processed = Pad.total processed in
  {
    notifications;
    alerts_processed;
    worker_deaths = !deaths;
    worker_respawns = !respawns;
    wall_seconds;
  }
