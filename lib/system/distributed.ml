module Mqp = Xy_core.Mqp
module Obs = Xy_obs.Obs

type axis = Split_documents | Split_subscriptions

let stage = "distributed"

type result = {
  notifications : (string * int) list;
  alerts_processed : int;
  wall_seconds : float;
}

let run ?algorithm ?(obs = Obs.default) ~axis ~partitions ~subscriptions ~alerts
    () =
  if partitions <= 0 then invalid_arg "Distributed.run: partitions <= 0";
  Obs.set_timer Unix.gettimeofday;
  Xy_trace.Trace.set_timer Unix.gettimeofday;
  let m_routed = Obs.counter obs ~stage "alerts_routed" in
  let m_notifications = Obs.counter obs ~stage "notifications" in
  let m_partitions = Obs.gauge obs ~stage "partitions" in
  let m_worker_span = Obs.histogram obs ~stage "worker_span" in
  Obs.Gauge.set_int m_partitions partitions;
  (* Build the per-partition processors (outside the timed region —
     structure construction is deployment, not steady state). *)
  let mqps =
    Array.init partitions (fun slot ->
        let mqp = Mqp.create ?algorithm ~obs () in
        List.iter
          (fun (id, events) ->
            match axis with
            | Split_documents -> Mqp.subscribe mqp ~id events
            | Split_subscriptions ->
                if id mod partitions = slot then Mqp.subscribe mqp ~id events)
          subscriptions;
        mqp)
  in
  let inboxes : Mqp.alert Bus.t array =
    Array.init partitions (fun _ ->
        Bus.create ~capacity:256 ~obs ~name:"inbox"
          ~trace_of:(fun alert -> alert.Mqp.trace)
          ())
  in
  (* One outbox message per processed alert carrying the whole match
     batch ("all the complex events are detected on a document
     simultaneously and thus are sent ... in one batch"), not one push
     per notification: at high match rates the per-notification push
     made the shared outbox the contention point. *)
  let outbox : (string * int list) Bus.t =
    Bus.create ~capacity:1024 ~obs ~name:"outbox" ()
  in
  let processed = Array.make partitions 0 in
  let start = Unix.gettimeofday () in
  (* Processor domains. *)
  let workers =
    Array.init partitions (fun slot ->
        Domain.spawn (fun () ->
            Obs.Histogram.time m_worker_span @@ fun () ->
            let mqp = mqps.(slot) in
            let rec loop () =
              match Bus.pop inboxes.(slot) with
              | None -> ()
              | Some alert ->
                  processed.(slot) <- processed.(slot) + 1;
                  (match Mqp.process mqp alert with
                  | [] -> ()
                  | ids ->
                      Obs.Counter.add m_notifications (List.length ids);
                      Bus.push outbox (alert.Mqp.url, ids));
                  loop ()
            in
            loop ()))
  in
  (* Collector domain. *)
  let collector =
    Domain.spawn (fun () ->
        let rec loop acc =
          match Bus.pop outbox with
          | None -> acc
          | Some (url, ids) ->
              loop (List.fold_left (fun acc id -> (url, id) :: acc) acc ids)
        in
        loop [])
  in
  (* Feeder: route per the axis. *)
  let route (alert : Mqp.alert) =
    Obs.Counter.incr m_routed;
    match axis with
    | Split_documents ->
        let slot =
          Int64.to_int
            (Int64.rem
               (Int64.logand (Xy_util.Hashing.fnv1a64 alert.Mqp.url) Int64.max_int)
               (Int64.of_int partitions))
        in
        Bus.push inboxes.(slot) alert
    | Split_subscriptions ->
        Array.iter (fun inbox -> Bus.push inbox alert) inboxes
  in
  List.iter route alerts;
  Array.iter Bus.close inboxes;
  Array.iter Domain.join workers;
  Bus.close outbox;
  let notifications = Domain.join collector in
  let wall_seconds = Unix.gettimeofday () -. start in
  let alerts_processed = Array.fold_left ( + ) 0 processed in
  { notifications; alerts_processed; wall_seconds }
