(** The sharded crawl → match → report pipeline.

    One batch of fetched documents saturates the cores in three
    stages, wired with bounded {!Bus} queues (per-stage backpressure):

    {v
      feeder ─▶ loader inboxes ─▶ loaders (×domains)
                                     │ parse/warehouse/diff/detect
                                     ▼
                            shard inboxes ─▶ MQP shards (×shards)
                                     │ match (+ work stealing)
                                     ▼
                               results bus ─▶ drainer (caller's domain)
                                               journal/report, in order
    v}

    Both of the paper's §4.2 distribution axes apply to the shard
    stage: [Split_documents] routes each alert to one shard (every
    shard holds the full subscription set), [Split_subscriptions]
    broadcasts each alert to all shards and the drainer merges the
    partial matches.  Documents route to loaders by URL hash, so one
    URL's version chain is always built in order by one worker.

    The drainer is the single owner of all serial state (journal,
    reporter, trigger): results apply strictly in batch order, so a
    parallel run is observationally identical to the serial loop. *)

type config = {
  domains : int;  (** loader workers (the crawl/warehouse stage) *)
  shards : int;  (** monitoring-query-processor shards *)
  axis : Distributed.axis;
  steal : bool;  (** idle shards steal half the longest sibling inbox *)
  capacity : int;  (** per-stage bus capacity (backpressure) *)
}

(** [domains = 1]: callers treat a single domain as "stay serial". *)
val default_config : config

type stats = {
  p_deaths : int;  (** shard workers killed by the [worker] fault point *)
  p_respawns : int;
  p_steals : int;  (** successful steal operations *)
  p_stolen : int;  (** items moved by stealing *)
}

(** [run config ~docs ~kill ~url_of ~worker ~shard_match ~drain ()]
    processes one batch and returns once every document has been
    drained and every spawned domain joined.

    - [kill.(i)] arms the worker-death fault on document [i]'s alert
      (pre-drawn serially by the caller — fault accounting is not
      multi-domain safe); the shard that dequeues it dies holding its
      work, and the supervisor respawns it with that work carried
      over, so deaths redistribute rather than lose messages.
    - [worker ~slot doc] runs on loader domain [slot]: it must not
      raise, and must touch only per-slot or internally synchronized
      state.  Returns the outcome handed to [drain] plus the alert to
      match, if any.
    - [shard_match ~slot ~dest alert] runs on shard domain [slot];
      [dest] is the shard the alert was routed to, which differs from
      [slot] when the work was stolen.  Subscription-axis callers must
      select the [dest] subset; document-axis callers use [slot]'s
      (interchangeable) matcher so stealing stays safe even for
      matchers that are not concurrent-read-safe.
    - [drain idx outcome matched] runs on the caller's domain, in
      strictly increasing [idx] order; [matched] is the merged match
      list and summed match latency when the document alerted.  If it
      raises, no later document is drained, every stage is still run
      to completion and joined, and the exception is re-raised — the
      crash leaves exactly what a serial crash would.

    Steal/death telemetry goes to [obs] ([bus/steals],
    [bus/stolen_items], [fault/worker_deaths], [fault/worker_respawns])
    and comes back in {!stats}. *)
val run :
  config ->
  ?obs:Xy_obs.Obs.t ->
  docs:'d array ->
  kill:bool array ->
  url_of:('d -> string) ->
  worker:(slot:int -> 'd -> 'r * Xy_core.Mqp.alert option) ->
  shard_match:(slot:int -> dest:int -> Xy_core.Mqp.alert -> int list) ->
  drain:(int -> 'r -> (int list * float) option -> unit) ->
  unit ->
  stats
