module Mqp = Xy_core.Mqp
module Partition = Xy_core.Partition
module Obs = Xy_obs.Obs

type config = {
  domains : int;  (** loader workers *)
  shards : int;  (** monitoring-query-processor shards *)
  axis : Distributed.axis;
  steal : bool;
  capacity : int;  (** per-stage bus capacity (backpressure) *)
}

let default_config =
  { domains = 1; shards = 1; axis = Distributed.Split_documents; steal = true;
    capacity = 64 }

type stats = {
  p_deaths : int;
  p_respawns : int;
  p_steals : int;
  p_stolen : int;
}

(* One copy of an alert bound for a shard.  [s_slot] is the shard the
   router *destined* it for: under [Split_subscriptions] the matcher
   subset is the destination's, even when a thief executes the match.
   [s_kill] arms the worker-death failure point — pre-drawn serially
   on the main domain (the fault journal is not multi-domain safe), it
   rides the message and fires in whichever shard dequeues it. *)
type shard_item = {
  s_idx : int;
  s_slot : int;
  s_alert : Mqp.alert;
  s_kill : bool;
}

type 'r result_msg =
  | Worked of int * 'r * bool  (** doc index, outcome, has-alert *)
  | Matched of int * int list * float  (** doc index, partial match, seconds *)
  | Shard_died of int * shard_item list
      (** slot, items the dead worker held (kill cleared on the head) *)

(* Reorder-buffer cell: a document is complete once its load outcome
   has arrived and, if it alerted, all its match partials did too
   (1 under [Split_documents], [shards] under [Split_subscriptions]). *)
type 'r cell = {
  mutable c_outcome : 'r option;
  mutable c_has_alert : bool;
  mutable c_partials : int list list;
  mutable c_partial_count : int;
  mutable c_latency : float;
}

let stage = "bus"

let run config ?(obs = Obs.default) ~docs ~kill ~url_of ~worker ~shard_match
    ~drain () =
  let { domains; shards; axis; steal; capacity } = config in
  if domains <= 0 then invalid_arg "Parallel.run: domains <= 0";
  if shards <= 0 then invalid_arg "Parallel.run: shards <= 0";
  let len = Array.length docs in
  if Array.length kill <> len then invalid_arg "Parallel.run: kill length";
  Wall.install_timers ();
  let m_steals = Obs.counter obs ~stage "steals" in
  let m_stolen = Obs.counter obs ~stage "stolen_items" in
  let m_deaths = Obs.counter obs ~stage:"fault" "worker_deaths" in
  let m_respawns = Obs.counter obs ~stage:"fault" "worker_respawns" in
  (* All buses and counters are registered here, on the caller's
     domain, before anything spawns. *)
  let doc_inboxes : (int * 'd) Bus.t array =
    Array.init domains (fun _ ->
        Bus.create ~capacity ~obs ~name:"loader_inbox" ())
  in
  let shard_inboxes : shard_item Bus.t array =
    Array.init shards (fun _ ->
        Bus.create ~capacity ~obs ~name:"shard_inbox"
          ~trace_of:(fun item -> item.s_alert.Mqp.trace)
          ())
  in
  let results : 'r result_msg Bus.t =
    Bus.create ~capacity:(max capacity 256) ~obs ~name:"results" ()
  in
  let steal_ops = Pad.create shards in
  let steal_items = Pad.create shards in
  (* Feeder: its own domain, so the caller's domain is free to drain
     results while the batch is still streaming in under bounded
     capacities.  Same-URL documents hash to the same loader, so a
     URL's version chain is built in feed order by a single worker. *)
  let feeder =
    Domain.spawn (fun () ->
        Array.iteri
          (fun idx doc ->
            let slot = Partition.slot_of_url ~partitions:domains (url_of doc) in
            Bus.push doc_inboxes.(slot) (idx, doc))
          docs;
        Array.iter Bus.close doc_inboxes)
  in
  (* Loaders: parse/warehouse/diff/detect via the caller's [worker],
     then announce the outcome and route the alert (if any) to its
     shard(s).  The last loader to finish closes the shard inboxes. *)
  let live_loaders = Atomic.make domains in
  let loaders =
    Array.init domains (fun slot ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Bus.pop doc_inboxes.(slot) with
              | None -> ()
              | Some (idx, doc) ->
                  let outcome, alert = worker ~slot doc in
                  Bus.push results (Worked (idx, outcome, alert <> None));
                  (match alert with
                  | None -> ()
                  | Some (alert : Mqp.alert) -> (
                      match axis with
                      | Distributed.Split_documents ->
                          let dest =
                            Partition.slot_of_url ~partitions:shards
                              alert.Mqp.url
                          in
                          Bus.push shard_inboxes.(dest)
                            { s_idx = idx; s_slot = dest; s_alert = alert;
                              s_kill = kill.(idx) }
                      | Distributed.Split_subscriptions ->
                          (* Broadcast; the kill flag rides exactly one
                             copy so a fault draw costs one death. *)
                          for dest = 0 to shards - 1 do
                            Bus.push shard_inboxes.(dest)
                              { s_idx = idx; s_slot = dest; s_alert = alert;
                                s_kill = kill.(idx) && dest = 0 }
                          done));
                  loop ()
            in
            loop ();
            if Atomic.fetch_and_add live_loaders (-1) = 1 then
              Array.iter Bus.close shard_inboxes))
  in
  (* Shard workers.  [pending] holds locally dequeued items (a stolen
     batch); a death therefore carries the whole remainder back to the
     supervisor, so stolen work is never lost.  With stealing on, a
     worker never blocks on its own inbox: it polls, robs the longest
     sibling when idle, and exits only once every shard inbox is
     closed and empty (the tail-steal phase — late skew drains onto
     whichever workers are still hungry). *)
  let spawn_shard slot ~carried =
    Domain.spawn (fun () ->
        let process item =
          let t0 = Obs.now () in
          let matched = shard_match ~slot ~dest:item.s_slot item.s_alert in
          let latency = Obs.now () -. t0 in
          Bus.push results (Matched (item.s_idx, matched, latency))
        in
        let steal_once () =
          let victim = ref (-1) and longest = ref 1 in
          Array.iteri
            (fun v inbox ->
              if v <> slot then begin
                let n = Bus.length inbox in
                if n > !longest then begin
                  victim := v;
                  longest := n
                end
              end)
            shard_inboxes;
          if !victim < 0 then []
          else
            match Bus.steal_half shard_inboxes.(!victim) with
            | [] -> []
            | stolen ->
                Pad.incr steal_ops slot;
                Pad.add steal_items slot (List.length stolen);
                Obs.Counter.incr m_steals;
                Obs.Counter.add m_stolen (List.length stolen);
                stolen
        in
        let rec loop pending =
          match pending with
          | item :: rest ->
              if item.s_kill then begin
                Obs.Counter.incr m_deaths;
                Bus.push results
                  (Shard_died (slot, { item with s_kill = false } :: rest))
              end
              else begin
                process item;
                loop rest
              end
          | [] -> (
              match Bus.try_pop shard_inboxes.(slot) with
              | Some item -> loop [ item ]
              | None ->
                  if not steal then (
                    match Bus.pop shard_inboxes.(slot) with
                    | Some item -> loop [ item ]
                    | None -> ())
                  else
                    match steal_once () with
                    | _ :: _ as stolen -> loop stolen
                    | [] ->
                        if Array.for_all Bus.drained shard_inboxes then ()
                        else begin
                          (* Nothing to do anywhere yet: brief sleep
                             rather than a hot spin, so single-core
                             hosts still make progress elsewhere. *)
                          Unix.sleepf 2e-5;
                          loop []
                        end)
        in
        loop carried)
  in
  let shard_domains = Array.init shards (fun slot -> spawn_shard slot ~carried:[]) in
  (* Drainer — the caller's own domain.  Applies per-document results
     strictly in batch order through [drain] (the single serial owner
     of journal, reporter and trigger state), supervises shard deaths,
     and on a [drain] exception keeps consuming (so every stage can
     finish and be joined) but applies nothing further — matching what
     a serial kill leaves behind. *)
  let cells =
    Array.init len (fun _ ->
        { c_outcome = None; c_has_alert = false; c_partials = [];
          c_partial_count = 0; c_latency = 0. })
  in
  let needed = match axis with
    | Distributed.Split_documents -> 1
    | Distributed.Split_subscriptions -> shards
  in
  let complete c =
    c.c_outcome <> None && ((not c.c_has_alert) || c.c_partial_count >= needed)
  in
  let deaths = ref 0 and respawns = ref 0 in
  let failure = ref None in
  let next = ref 0 in
  let apply idx =
    let c = cells.(idx) in
    let outcome = Option.get c.c_outcome in
    let matched =
      if not c.c_has_alert then None
      else
        match c.c_partials with
        | [ one ] -> Some (one, c.c_latency)
        | many ->
            (* Subscription-axis merge: partials are disjoint but
               unordered across shards. *)
            Some (List.sort_uniq Int.compare (List.concat many), c.c_latency)
    in
    match !failure with
    | Some _ -> ()
    | None -> ( try drain idx outcome matched with e -> failure := Some e)
  in
  let advance () =
    while !next < len && complete cells.(!next) do
      apply !next;
      incr next
    done
  in
  while !next < len do
    match Bus.pop results with
    | None -> assert false (* the results bus is never closed *)
    | Some (Worked (idx, outcome, has_alert)) ->
        let c = cells.(idx) in
        c.c_outcome <- Some outcome;
        c.c_has_alert <- has_alert;
        advance ()
    | Some (Matched (idx, partial, latency)) ->
        let c = cells.(idx) in
        c.c_partials <- partial :: c.c_partials;
        c.c_partial_count <- c.c_partial_count + 1;
        c.c_latency <- c.c_latency +. latency;
        advance ()
    | Some (Shard_died (slot, carried)) ->
        incr deaths;
        incr respawns;
        Obs.Counter.incr m_respawns;
        Domain.join shard_domains.(slot);
        shard_domains.(slot) <- spawn_shard slot ~carried
  done;
  Domain.join feeder;
  Array.iter Domain.join loaders;
  Array.iter Domain.join shard_domains;
  (match !failure with Some e -> raise e | None -> ());
  {
    p_deaths = !deaths;
    p_respawns = !respawns;
    p_steals = Pad.total steal_ops;
    p_stolen = Pad.total steal_items;
  }
