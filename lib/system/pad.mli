(** Cache-line-padded per-worker counters.

    One logical [int array] whose slots are spread a cache line apart,
    so worker domains incrementing their own slot never contend on a
    shared line (false sharing).  Each slot is still a plain (not
    atomic) word: exactly one domain may write a given slot; any
    domain may read after the writers have been joined. *)

type t

val create : int -> t

val incr : t -> int -> unit
val add : t -> int -> int -> unit

(** [get t slot] — racy against a live writer; exact once the writing
    domain is joined. *)
val get : t -> int -> int

val total : t -> int
