(** Xyleme monitoring itself.

    The paper's system is its own best use case: system health is just
    more XML data on (a virtual) web.  This module renders the
    {!Xy_obs} snapshot and the {!Xy_trace} summaries as XML documents
    under the [xyleme://self/] scheme; {!Xyleme.inject_self_monitor}
    feeds them through the *unmodified* pipeline — loader, alerters,
    MQP, reporter — so operators watch Xyleme with ordinary
    subscriptions, e.g.

    {v
subscription ReporterBacklog
monitoring
where modified self\\reporter_buffer_depth contains "over_1000"
  and URL extends "xyleme://self/"
report when immediate
    v}

    Numeric thresholds work through the word-based condition language
    via {e decade markers}: a metric element's text carries its value
    plus one marker word per power of ten it reaches ([over_1]
    [over_10] [over_100] …), so [contains "over_1000"] is exactly
    "value ≥ 1000".  Since word matching is exact, [over_10] does not
    fire for [over_100]. *)

val health_url : string
(** ["xyleme://self/metrics.xml"] *)

val traces_url : string
(** ["xyleme://self/traces.xml"] *)

(** [markers v] is the decade-marker words for value [v], smallest
    first ([[]] when [v < 1]). *)
val markers : float -> string list

(** [health_document ~snapshot] is a [<health>] element with one child
    per metric, tagged [<stage>_<name>] (e.g.
    [<reporter_buffer_depth>]); the text is the metric's value
    followed by its decade markers.  Histograms contribute their
    sample count. *)
val health_document : snapshot:Xy_obs.Obs.Snapshot.t -> Xy_xml.Types.element

(** [traces_document tracer] is a [<trace_summary>] element: sampled
    trace counts plus one [trace_<stage>] child per pipeline stage
    seen in the completed-trace ring, carrying the stage's total wall
    milliseconds (and decade markers thereof). *)
val traces_document : Xy_trace.Trace.t -> Xy_xml.Types.element

(** [slo_url name] is ["xyleme://self/slo/<name>.xml"] — one stable
    URL per objective, so a subscription on
    [URL extends "xyleme://self/slo/"] sees every status transition. *)
val slo_url : string -> string

(** [slo_document report] is a [<slo>] element whose [<status>] child
    carries the word [breached] or [ok] (the word alerting
    subscriptions test with [contains]), plus burn rates and window
    tallies with decade markers. *)
val slo_document : Xy_slo.Slo.report -> Xy_xml.Types.element

(** Serialized forms of the documents, ready for {!Xyleme.ingest}. *)
val health_content : snapshot:Xy_obs.Obs.Snapshot.t -> string

val traces_content : Xy_trace.Trace.t -> string
val slo_content : Xy_slo.Slo.report -> string
