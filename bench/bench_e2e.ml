(* End-to-end experiment: the whole pipeline — loader, alerters, MQP,
   reporter — at document-stream scale, supporting the paper's
   "millions of pages per day with millions of subscriptions on a
   single PC" claim (scaled by the --quick/--paper knob). *)

open Harness
module Xyleme = Xy_system.Xyleme
module Web = Xy_crawler.Synthetic_web
module Sink = Xy_reporter.Sink
module Loader = Xy_warehouse.Loader
module Mqp = Xy_core.Mqp
module Workload = Xy_core.Workload
module Event_set = Xy_events.Event_set

let tbl_e2e scale =
  section "tbl-e2e — end-to-end pipeline rate";
  note
    "paper: the monitoring system is designed to monitor the fetching of \
     millions of documents per day while supporting millions of \
     subscriptions; alerter + MQP dominate the per-document path";
  (* Subscriptions: URL watchers across many sites plus content
     watchers, loaded through the real subscription manager. *)
  let sites = match scale with Quick -> 40 | Default -> 150 | Paper -> 400 in
  let subscriptions =
    match scale with Quick -> 500 | Default -> 5_000 | Paper -> 20_000
  in
  let docs_to_process =
    match scale with Quick -> 2_000 | Default -> 10_000 | Paper -> 40_000
  in
  let web = Web.generate ~seed:5 ~sites ~pages_per_site:6 () in
  let sink, _ = Sink.counting () in
  let xyleme =
    Xyleme.create ~seed:9 ~sink ~web ~obs:Xy_obs.Obs.default
      ~tracer:Harness.tracer ()
  in
  let accepted = ref 0 in
  for i = 0 to subscriptions - 1 do
    let site = i mod sites in
    let text =
      match i mod 4 with
      | 0 ->
          Printf.sprintf
            {|subscription P%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when count > 20 atmost weekly|}
            i site
      | 1 ->
          Printf.sprintf
            {|subscription N%d
monitoring
where new self\\product contains "%s" and URL extends "http://site%d.example.org/"
report when count > 20 atmost weekly|}
            i
            [| "camera"; "television"; "laptop"; "speaker" |].(i mod 4)
            site
      | 2 ->
          Printf.sprintf
            {|subscription D%d
monitoring
where domain = "commerce" and modified self and self\\price
report when count > 50 atmost weekly|}
            i
      | _ ->
          Printf.sprintf
            {|subscription W%d
monitoring
where self contains "%s" and URL extends "http://site%d.example.org/"
report when count > 50 atmost weekly|}
            i
            [| "wireless"; "portable"; "digital"; "stereo" |].(i mod 4)
            site
    in
    match Xyleme.subscribe xyleme ~owner:(Printf.sprintf "u%d" i) ~text with
    | Ok _ -> incr accepted
    | Error _ -> ()
  done;
  (* Drive a document stream: fetch pages round-robin, mutating the
     web as virtual time passes, and measure the wall-clock cost of
     the ingest path. *)
  let urls = Array.of_list (Web.urls web) in
  let processed = ref 0 in
  let _, wall =
    time_once (fun () ->
        let i = ref 0 in
        while !processed < docs_to_process do
          let url = urls.(!i mod Array.length urls) in
          (* This loop bypasses the crawler, so the per-document
             sampling decision the crawler would make happens here. *)
          let trace = Xy_trace.Trace.start Harness.tracer ~root:url in
          (match Web.fetch web ~url with
          | Some content ->
              let kind =
                match Web.kind_of web ~url with
                | Some Web.Xml_page -> Loader.Xml
                | Some Web.Html_page -> Loader.Html
                | None -> Loader.Auto
              in
              (match Xyleme.ingest ?trace xyleme ~url ~content ~kind with
              | _ -> incr processed
              | exception Loader.Rejected _ -> ())
          | None -> ());
          Option.iter Xy_trace.Trace.finish trace;
          incr i;
          (* evolve the web a bit every full sweep *)
          if !i mod Array.length urls = 0 then begin
            Xy_util.Clock.advance (Xyleme.clock xyleme) 3600.;
            ignore (Web.evolve web ~elapsed:3600.)
          end
        done)
  in
  let stats = Xyleme.stats xyleme in
  let per_doc = wall /. float_of_int !processed in
  print_table ~title:"full pipeline (load + diff + alerters + MQP + reporter)"
    ~header:
      [
        "subscriptions";
        "Card(A)";
        "Card(C)";
        "docs";
        "us/doc";
        "docs/day (1 PC)";
        "alerts";
        "notifications";
      ]
    [
      [
        string_of_int !accepted;
        string_of_int stats.Xyleme.atomic_events;
        string_of_int stats.Xyleme.complex_events;
        string_of_int !processed;
        Printf.sprintf "%.0f" (microseconds per_doc);
        Printf.sprintf "%.2e" (86400. /. per_doc);
        string_of_int stats.Xyleme.alerts_sent;
        string_of_int stats.Xyleme.notifications;
      ];
    ]

(* MQP-only at full paper scale for direct comparison with tbl-e2e:
   shows the processor itself is not the bottleneck (alerting +
   parsing dominate), consistent with the paper's architecture where
   alerters run distributed next to the loaders. *)
let tbl_e2e_mqp_share scale =
  section "tbl-e2e-mqp — MQP share of the pipeline cost";
  let card_a = 100_000 and b = 3 and s = 20 in
  let card_c = match scale with Quick -> 50_000 | Default | Paper -> 500_000 in
  let workload = { Workload.card_a; card_c; b; s } in
  let mqp = Workload.load_mqp workload ~seed:77 in
  let docs = Workload.document_sets workload ~seed:79 ~count:500 in
  let per_doc =
    time_per_unit ~units:(Array.length docs) (fun () ->
        Array.iter
          (fun events -> ignore (Mqp.process mqp { Mqp.url = ""; events; payload = ""; trace = None; birth = None }))
          docs)
  in
  print_table ~title:"isolated MQP cost at pipeline-like parameters"
    ~header:[ "Card(C)"; "us/doc (MQP only)" ]
    [ [ string_of_int card_c; Printf.sprintf "%.1f" (microseconds per_doc) ] ]

let all = [ ("tbl-e2e", tbl_e2e); ("tbl-e2e-mqp", tbl_e2e_mqp_share) ]
