(* Ablations of design choices the paper makes implicitly:

   tbl-order — the MQP "assumes some ordering on the atomic events"
   (§4.1) but never says which.  Under skewed event popularity the
   choice matters: if frequent events get *small* codes they head most
   complex-event prefixes and most incoming sets, multiplying root
   hits and sub-table descents; giving frequent events *large* codes
   (rare-first order) makes prefixes head with their most selective
   member.

   tbl-weak — the weak/strong rule (§5.1): "we disallow where clauses
   composed solely of a weak atomic condition ... otherwise we would
   have to raise one alert for each document".  We measure the alert
   volume with and without the rule. *)

open Harness
module Aes = Xy_core.Aes
module Event_set = Xy_events.Event_set
module Atomic = Xy_events.Atomic
module Registry = Xy_events.Registry
module Chain = Xy_alerters.Chain
module Loader = Xy_warehouse.Loader
module Store = Xy_warehouse.Store
module Prng = Xy_util.Prng
module Web = Xy_crawler.Synthetic_web

(* ------------------------------------------------------------------ *)

let tbl_order scale =
  section "tbl-order — ablation: atomic-event code ordering under skew";
  note
    "events drawn Zipf(1.0): 'there may be thousands of complex events that \
     will involve the url of Amazon's whereas only very few will be \
     concerned with John Doe's home page' (SS4.2).  frequent-first gives hot \
     events small codes; rare-first gives them large codes.";
  let card_a = 100_000 and b = 3 and s = 30 in
  let card_c = match scale with Quick -> 50_000 | Default | Paper -> 300_000 in
  let doc_count = 300 in
  let prng = Prng.create ~seed:101 in
  (* Draw everything in *rank* space (rank 0 = most popular). *)
  let draw_distinct_ranks count =
    let seen = Hashtbl.create (2 * count) in
    let budget = ref (50 * count) in
    while Hashtbl.length seen < count && !budget > 0 do
      decr budget;
      Hashtbl.replace seen (Prng.zipf prng ~n:card_a ~alpha:1.0) ()
    done;
    (* top up uniformly on collision exhaustion *)
    while Hashtbl.length seen < count do
      Hashtbl.replace seen (Prng.int prng card_a) ()
    done;
    List.of_seq (Hashtbl.to_seq_keys seen)
  in
  let complex_ranks = Array.init card_c (fun _ -> draw_distinct_ranks b) in
  let doc_ranks = Array.init doc_count (fun _ -> draw_distinct_ranks s) in
  let orderings =
    [
      ("frequent-first (rank = code)", fun rank -> rank);
      ("rare-first (reversed)", fun rank -> card_a - 1 - rank);
    ]
  in
  let rows =
    List.map
      (fun (label, code_of_rank) ->
        let aes = Aes.create () in
        Array.iteri
          (fun id ranks ->
            Aes.add aes ~id (Event_set.of_list (List.map code_of_rank ranks)))
          complex_ranks;
        let docs =
          Array.map
            (fun ranks -> Event_set.of_list (List.map code_of_rank ranks))
            doc_ranks
        in
        let matches = ref 0 in
        let per_doc =
          time_per_unit ~units:doc_count (fun () ->
              matches := 0;
              Array.iter
                (fun events ->
                  matches := !matches + List.length (Aes.match_set aes events))
                docs)
        in
        (* probe accounting over exactly one pass *)
        Aes.reset_probes aes;
        Array.iter (fun events -> ignore (Aes.match_set aes events)) docs;
        let probes_per_doc =
          float_of_int (Aes.probes aes) /. float_of_int doc_count
        in
        [
          label;
          Printf.sprintf "%.1f" (microseconds per_doc);
          Printf.sprintf "%.1f" probes_per_doc;
          string_of_int !matches;
        ])
      orderings
  in
  print_table
    ~title:(Printf.sprintf "Card(C)=%d, Zipf-skewed events" card_c)
    ~header:[ "code assignment"; "us/doc"; "probes/doc"; "matches (sanity)" ]
    rows

(* ------------------------------------------------------------------ *)

let tbl_weak scale =
  section "tbl-weak — ablation: the weak/strong event rule";
  note
    "SS5.1: every fetched page raises one of new/updated/unchanged, so \
     without the rule every page would alert the processor; with it, only \
     pages raising a strong event do.";
  let pages = match scale with Quick -> 300 | Default | Paper -> 1_000 in
  let web = Web.generate ~seed:7 ~sites:10 ~pages_per_site:(pages / 10) () in
  let clock = Xy_util.Clock.create () in
  let store = Store.create () in
  let loader = Loader.create ~store ~clock () in
  let registry = Registry.create () in
  let chain = Chain.create registry in
  (* A realistic mix: status interest (weak), URL watchers on 2 of 10
     sites, a content word. *)
  ignore (Registry.register registry (Atomic.Doc_status Atomic.New));
  ignore (Registry.register registry (Atomic.Doc_status Atomic.Updated));
  ignore (Registry.register registry (Atomic.Doc_status Atomic.Unchanged));
  ignore (Registry.register registry (Atomic.Url_extends "http://site0.example.org/"));
  ignore (Registry.register registry (Atomic.Url_extends "http://site1.example.org/"));
  ignore
    (Registry.register registry
       (Atomic.Element
          { change = None; tag = "product"; word = Some (Atomic.Anywhere, "camera") }));
  let fetched = ref 0 and with_rule = ref 0 and without_rule = ref 0 in
  let ingest url =
    match Web.fetch web ~url with
    | None -> ()
    | Some content ->
        let kind =
          match Web.kind_of web ~url with
          | Some Web.Xml_page -> Loader.Xml
          | Some Web.Html_page -> Loader.Html
          | None -> Loader.Auto
        in
        (match Loader.load loader ~url ~content ~kind with
        | result ->
            incr fetched;
            (* with the rule: the chain decides *)
            (match Chain.process chain ~result ~content with
            | Some _ -> incr with_rule
            | None -> ());
            (* without the rule every page raises its status event:
               count every fetch as an alert *)
            incr without_rule
        | exception Loader.Rejected _ -> ())
  in
  (* Two passes: first sight (all new), then refetch after evolution
     (mix of updated/unchanged). *)
  List.iter ingest (Web.urls web);
  ignore (Web.evolve web ~elapsed:(3. *. 86400.));
  List.iter ingest (Web.urls web);
  let ratio =
    float_of_int !without_rule /. float_of_int (max 1 !with_rule)
  in
  print_table ~title:"alerts reaching the Monitoring Query Processor"
    ~header:
      [ "fetches"; "alerts with rule"; "alerts without rule"; "amplification" ]
    [
      [
        string_of_int !fetched;
        string_of_int !with_rule;
        string_of_int !without_rule;
        Printf.sprintf "%.1fx" ratio;
      ];
    ]

(* ------------------------------------------------------------------ *)

let tbl_sortint scale =
  section "tbl-sortint — ablation: monomorphic sort in Sorted_ints.of_array";
  note
    "every event set is built through Sorted_ints.of_array; Array.sort with \
     polymorphic compare pays the generic-compare dispatch per comparison, \
     Int.compare specialises to an unboxed integer comparison.";
  let reps = match scale with Quick -> 20_000 | Default | Paper -> 100_000 in
  let prng = Prng.create ~seed:77 in
  let sizes = [ 3; 10; 30; 100 ] in
  let rows =
    List.map
      (fun size ->
        let inputs =
          Array.init 64 (fun _ -> Array.init size (fun _ -> Prng.int prng 100_000))
        in
        (* direct call sites: passing the comparator as an argument
           would defeat the monomorphisation being measured *)
        let poly =
          time_per_unit ~units:(reps * 64) (fun () ->
              for _ = 1 to reps do
                Array.iter
                  (fun input ->
                    let a = Array.copy input in
                    Array.sort compare a)
                  inputs
              done)
        in
        let mono =
          time_per_unit ~units:(reps * 64) (fun () ->
              for _ = 1 to reps do
                Array.iter
                  (fun input ->
                    let a = Array.copy input in
                    Array.sort Int.compare a)
                  inputs
              done)
        in
        [
          string_of_int size;
          Printf.sprintf "%.0f" (poly *. 1e9);
          Printf.sprintf "%.0f" (mono *. 1e9);
          Printf.sprintf "%.1fx" (poly /. mono);
        ])
      sizes
  in
  print_table ~title:"time per sort (ns)"
    ~header:[ "array size"; "polymorphic compare"; "Int.compare"; "speedup" ]
    rows

let all =
  [ ("tbl-order", tbl_order); ("tbl-weak", tbl_weak); ("tbl-sortint", tbl_sortint) ]
