(* Sharded-pipeline scaling: the same end-to-end workload as tbl-e2e,
   batched through [Xyleme.ingest_batch] at 1/2/4/8 loader domains.
   The interesting column is docs/sec versus the domains=1 (serial
   path) row; steals shows how much skew the work-stealing shards
   absorbed.  On a single-core host the rows still record — the CI
   speedup assertion is the consumer that checks core count first. *)

open Harness
module Xyleme = Xy_system.Xyleme
module Parallel = Xy_system.Parallel
module Distributed = Xy_system.Distributed
module Web = Xy_crawler.Synthetic_web
module Sink = Xy_reporter.Sink
module Loader = Xy_warehouse.Loader
module Obs = Xy_obs.Obs

let subscribe_all xyleme ~sites ~subscriptions =
  let accepted = ref 0 in
  for i = 0 to subscriptions - 1 do
    let site = i mod sites in
    let text =
      match i mod 3 with
      | 0 ->
          Printf.sprintf
            {|subscription P%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when count > 20 atmost weekly|}
            i site
      | 1 ->
          Printf.sprintf
            {|subscription N%d
monitoring
where new self\\product contains "%s" and URL extends "http://site%d.example.org/"
report when count > 20 atmost weekly|}
            i
            [| "camera"; "television"; "laptop"; "speaker" |].(i mod 4)
            site
      | _ ->
          Printf.sprintf
            {|subscription W%d
monitoring
where self contains "%s" and URL extends "http://site%d.example.org/"
report when count > 50 atmost weekly|}
            i
            [| "wireless"; "portable"; "digital"; "stereo" |].(i mod 4)
            site
    in
    match Xyleme.subscribe xyleme ~owner:(Printf.sprintf "u%d" i) ~text with
    | Ok _ -> incr accepted
    | Error _ -> ()
  done;
  !accepted

(* One configuration: a fresh system (so warehouse state is identical
   across rows), the subscription set, then the document stream pushed
   through [ingest_batch] in crawl-step-sized batches. *)
let run_config ~scale ~domains ~axis ~label =
  let sites = match scale with Quick -> 30 | Default -> 80 | Paper -> 200 in
  let subscriptions =
    match scale with Quick -> 400 | Default -> 2_000 | Paper -> 8_000
  in
  let docs_to_process =
    match scale with Quick -> 1_200 | Default -> 6_000 | Paper -> 24_000
  in
  let batch_size = 64 in
  let web = Web.generate ~seed:5 ~sites ~pages_per_site:6 () in
  let sink, _ = Sink.counting () in
  let obs = Obs.create () in
  let parallel =
    { Parallel.default_config with
      domains;
      shards = max 1 domains;
      axis;
      steal = true }
  in
  let xyleme = Xyleme.create ~seed:9 ~sink ~web ~obs ~parallel () in
  let accepted = subscribe_all xyleme ~sites ~subscriptions in
  let urls = Array.of_list (Web.urls web) in
  Gc.compact ();
  let heap_before = (Gc.stat ()).Gc.live_words in
  let processed = ref 0 in
  let _, wall =
    time_once (fun () ->
        let i = ref 0 in
        let batch = ref [] and in_batch = ref 0 in
        let flush () =
          if !in_batch > 0 then begin
            Xyleme.ingest_batch xyleme (List.rev !batch);
            batch := [];
            in_batch := 0
          end
        in
        while !processed < docs_to_process do
          let url = urls.(!i mod Array.length urls) in
          (match Web.fetch web ~url with
          | Some content ->
              let kind =
                match Web.kind_of web ~url with
                | Some Web.Xml_page -> Loader.Xml
                | Some Web.Html_page -> Loader.Html
                | None -> Loader.Auto
              in
              batch :=
                { Xyleme.bd_url = url; bd_content = Some content;
                  bd_kind = kind; bd_trace = None; bd_birth = None }
                :: !batch;
              incr in_batch;
              incr processed;
              if !in_batch >= batch_size then flush ()
          | None -> ());
          incr i;
          if !i mod Array.length urls = 0 then begin
            flush ();
            Xy_util.Clock.advance (Xyleme.clock xyleme) 3600.;
            ignore (Web.evolve web ~elapsed:3600.)
          end
        done;
        flush ())
  in
  Gc.compact ();
  let heap_after = (Gc.stat ()).Gc.live_words in
  let steals = Obs.Counter.value (Obs.counter obs ~stage:"bus" "steals") in
  let stats = Xyleme.stats xyleme in
  let per_doc = wall /. float_of_int !processed in
  let docs_per_sec = 1. /. per_doc in
  record_mqp ~name:(Printf.sprintf "tbl-par-e2e/%s" label) ~docs_per_sec
    ~memory_words:(max 0 (heap_after - heap_before))
    ~steals ();
  [
    label;
    string_of_int accepted;
    string_of_int !processed;
    Printf.sprintf "%.0f" (microseconds per_doc);
    Printf.sprintf "%.0f" docs_per_sec;
    string_of_int steals;
    string_of_int stats.Xyleme.alerts_sent;
    string_of_int stats.Xyleme.notifications;
  ]

let tbl_par_e2e scale =
  section "tbl-par-e2e — sharded pipeline scaling";
  note
    "end-to-end batches through the Parallel engine: N loader domains, N \
     MQP shards, work stealing on; the domains=1 row is the serial path. \
     Wall-clock speedup needs real cores (this host: %d); notification \
     counts must be identical down the column."
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun (domains, axis, label) -> run_config ~scale ~domains ~axis ~label)
      [
        (1, Distributed.Split_documents, "domains=1");
        (2, Distributed.Split_documents, "domains=2");
        (4, Distributed.Split_documents, "domains=4");
        (8, Distributed.Split_documents, "domains=8");
        (4, Distributed.Split_subscriptions, "subs/domains=4");
      ]
  in
  print_table ~title:"batched pipeline rate vs loader domains (shards = domains)"
    ~header:
      [
        "config";
        "subscriptions";
        "docs";
        "us/doc";
        "docs/sec";
        "steals";
        "alerts";
        "notifications";
      ]
    rows

let all = [ ("tbl-par-e2e", tbl_par_e2e) ]
