(* tbl-chaos: the serving surface under seeded network fault plans.

   The fanout measurement of tbl-serve, repeated with the chaotic
   transport armed and the load generator replaced by supervised
   reconnecting clients ({!Xy_serve.Client}): N clients each receive
   [reports_each] REPORT frames (delivered round-robin) while the
   wire injector drops connections, stalls operations and mangles
   bytes on its seeded schedule.  A scenario is done when the
   journaled pending store drains — i.e. when every report has been
   delivered AND acknowledged despite the faults — so the reported
   rate prices in every reconnect, replay and redelivery.

   Scenarios: clean (faults = none, the tbl-serve baseline shape),
   conn_drop@0.05, net_delay@0.1, and the two mixed.  p99 send lag
   comes from the serve stage's [send_lag_seconds] histogram
   (deliver-to-socket-write); the acceptance bar is p99 under 5%
   conn_drop within 3x the fault-free figure. *)

open Harness
module Serve = Xy_serve.Serve
module Client = Xy_serve.Client
module Fault = Xy_fault.Fault
module Obs = Xy_obs.Obs

let connections = function Quick -> 16 | Default -> 64 | Paper -> 128
let reports_each = function Quick -> 8 | Default -> 16 | Paper -> 32

let callbacks =
  {
    Serve.cb_subscribe = (fun ~owner ~text:_ -> Ok ("W" ^ owner));
    cb_unsubscribe = (fun _ -> Ok ());
    cb_status = (fun () -> "<health/>");
  }

let client_id i = Printf.sprintf "c%d" i

let scenarios =
  [
    ("clean", []);
    ("drop", [ ("conn_drop", 0.05) ]);
    ("delay", [ ("net_delay", 0.1) ]);
    ( "mixed",
      [ ("conn_drop", 0.05); ("partial_write", 0.02); ("net_delay", 0.1);
        ("net_mangle", 0.01) ] );
  ]

(* One scenario: N supervised clients, k reports each, run until the
   pending store drains.  Returns (reports/sec, p99 lag ms,
   reconnects, live words). *)
let run_scenario ~n ~k ~spec =
  let obs = Obs.create () in
  let faults =
    match spec with [] -> Fault.none | s -> Fault.create ~obs ~seed:11 s
  in
  let s =
    Serve.create ~obs ~faults
      ~config:
        (Serve.config ~backlog:512 ~port:0 ~idle_deadline:30. ~read_deadline:10.
           ())
      ()
  in
  Serve.listen s ~callbacks;
  let port = Serve.port s in
  Fun.protect ~finally:(fun () -> Serve.stop ~drain:0. s) @@ fun () ->
  let clients =
    Array.init n (fun i ->
        Client.connect
          (Client.config ~port ~id:(client_id i) ~backoff_initial:0.005
             ~backoff_max:0.1 ~ping_interval:1. ~pong_deadline:5. ~seed:(i + 1)
             ()))
  in
  Fun.protect ~finally:(fun () -> Array.iter Client.close clients) @@ fun () ->
  Array.iter
    (fun c ->
      if not (Client.wait_connected ~timeout:30. c) then
        failwith "supervised client never connected")
    clients;
  let total = n * k in
  let (), seconds =
    time_once (fun () ->
        for seq = 1 to k do
          for i = 0 to n - 1 do
            Serve.deliver s ~seq ~recipient:(client_id i) ~subscription:"W"
              ~at:(float_of_int seq)
              ~body:"<Report><UpdatedPage url=\"http://site0/p\"/></Report>"
          done
        done;
        (* the supervised clients ack as they go; pump until every
           report is delivered and retired, reconnects included *)
        let deadline = Unix.gettimeofday () +. 300. in
        while Serve.pending_total s > 0 do
          if Unix.gettimeofday () > deadline then failwith "chaos never drained";
          if Serve.pump s = 0 then Thread.delay 0.001
        done)
  in
  let rate = float_of_int total /. seconds in
  let p99_lag_ms =
    match
      Obs.Snapshot.find (Obs.snapshot obs) ~stage:"serve" "send_lag_seconds"
    with
    | Some (Obs.Snapshot.Histogram h) -> Obs.Snapshot.quantile h 0.99 *. 1e3
    | _ -> nan
  in
  let reconnects =
    Array.fold_left
      (fun acc c -> acc + (Client.stats c).Client.reconnects)
      0 clients
  in
  Gc.full_major ();
  let memory_words = (Gc.stat ()).Gc.live_words in
  (rate, p99_lag_ms, reconnects, memory_words)

let run scale =
  let n = connections scale in
  let k = reports_each scale in
  let rows =
    List.map
      (fun (label, spec) ->
        let rate, p99, reconnects, words = run_scenario ~n ~k ~spec in
        record_mqp ~p99_lag_ms:p99
          ~name:(Printf.sprintf "tbl-chaos/%s@%d" label n)
          ~docs_per_sec:rate ~memory_words:words ();
        (label, spec, rate, p99, reconnects))
      scenarios
  in
  print_table
    ~title:
      (Printf.sprintf "tbl-chaos (%d supervised clients x %d reports)" n k)
    ~header:[ "scenario"; "plan"; "reports/sec"; "p99 lag (ms)"; "reconnects" ]
    (List.map
       (fun (label, spec, rate, p99, reconnects) ->
         [
           label;
           (if spec = [] then "-" else Fault.spec_to_string spec);
           Printf.sprintf "%.0f" rate;
           Printf.sprintf "%.3f" p99;
           string_of_int reconnects;
         ])
       rows);
  match
    ( List.find_opt (fun (l, _, _, _, _) -> l = "clean") rows,
      List.find_opt (fun (l, _, _, _, _) -> l = "drop") rows )
  with
  | Some (_, _, _, clean_p99, _), Some (_, _, _, drop_p99, _) ->
      note "p99 under 5%% conn_drop: %.3fms vs %.3fms clean (%.1fx)" drop_p99
        clean_p99
        (if clean_p99 > 0. then drop_p99 /. clean_p99 else nan)
  | _ -> ()

let all = [ ("tbl-chaos", run) ]
