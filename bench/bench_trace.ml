(* Tracing overhead on the distributed MQP hot path.

   The tracing substrate must be free when sampling is disabled and
   cheap at production sampling rates: this experiment reruns the
   tbl-dist-par workload (document-axis partitioning on real domains,
   Card(A)=100k, s=30) with the per-document tracing calls threaded
   exactly as the pipeline threads them — sampling decision at the
   "fetch", context riding the alert into [Mqp.process], finish after
   the batch — and compares throughput across sampling rates against
   the no-tracer baseline. *)

open Harness
module Mqp = Xy_core.Mqp
module Workload = Xy_core.Workload
module Trace = Xy_trace.Trace

let tbl_trace_overhead scale =
  section "tbl-trace-overhead — per-document tracing cost (tbl-dist-par workload)";
  note
    "sampling off must be a no-op (acceptance: < 3%% throughput cost); 1-in-N \
     costs one PRNG draw per document plus span bookkeeping for the sampled \
     ones";
  let card_a = 100_000 and b = 3 and s = 30 in
  let card_c = match scale with Quick -> 50_000 | Default | Paper -> 200_000 in
  let docs_total = match scale with Quick -> 8_000 | Default | Paper -> 20_000 in
  let workload = { Workload.card_a; card_c; b; s } in
  let docs = Workload.document_sets workload ~seed:61 ~count:docs_total in
  let partitions = min 4 (max 1 (Domain.recommended_domain_count () - 1)) in
  let shards =
    Array.init partitions (fun shard ->
        Array.of_seq
          (Seq.filter_map
             (fun i -> if i mod partitions = shard then Some docs.(i) else None)
             (Seq.init docs_total Fun.id)))
  in
  (* Matching is read-only on the subscription structure, so one MQP
     per partition serves every run — reloading 100k subscriptions per
     run would grow the heap monotonically and hand later runs worse
     locality than earlier ones. *)
  let mqps =
    Array.init partitions (fun _ -> Workload.load_mqp workload ~seed:67)
  in
  let run_once ~tracer =
    Gc.major ();
    let start = Unix.gettimeofday () in
    let domains =
      Array.init partitions (fun shard ->
          Domain.spawn (fun () ->
              let mqp = mqps.(shard) in
              (* The pipeline hands [start] an already-fetched URL; a
                 per-document sprintf here would bill string building
                 to the tracer. *)
              let root = Printf.sprintf "shard%d" shard in
              Array.iter
                (fun events ->
                  let trace =
                    match tracer with
                    | None -> None
                    | Some tracer -> Trace.start tracer ~root
                  in
                  ignore
                    (Mqp.process mqp
                       { Mqp.url = ""; events; payload = ""; trace; birth = None });
                  Option.iter Trace.finish trace)
                shards.(shard)))
    in
    Array.iter Domain.join domains;
    Unix.gettimeofday () -. start
  in
  Trace.set_timer Unix.gettimeofday;
  let configurations =
    [
      ("no tracer", None);
      ("sampling off", Some 0);
      ("1-in-1000", Some 1000);
      ("1-in-1", Some 1);
    ]
  in
  let tracers =
    List.map
      (fun (label, sample_every) ->
        ( label,
          Option.map
            (fun every -> Trace.create ~capacity:256 ~sample_every:every ~seed:71 ())
            sample_every ))
      configurations
  in
  (* Interleaved rounds, per-configuration minimum: run-to-run noise
     (domain spawn/join, scheduler) at this wall time is larger than
     the effect being measured, and sequential best-of-N would fold
     machine-state drift between configurations into the comparison.
     Each round also starts at a different configuration, so no
     configuration always runs first (warm caches) or last. *)
  let rounds = match scale with Quick -> 3 | Default | Paper -> 9 in
  let walls = Hashtbl.create 8 in
  let order = Array.of_list tracers in
  let n = Array.length order in
  for round = 0 to rounds - 1 do
    for i = 0 to n - 1 do
      let label, tracer = order.((round + i) mod n) in
      let wall = run_once ~tracer in
      let best =
        match Hashtbl.find_opt walls label with
        | Some prior -> Float.min prior wall
        | None -> wall
      in
      Hashtbl.replace walls label best
    done
  done;
  let baseline = Hashtbl.find walls "no tracer" in
  let rows =
    List.map
      (fun (label, tracer) ->
        let wall = Hashtbl.find walls label in
        let overhead = (wall -. baseline) /. baseline *. 100. in
        [
          label;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.0f" (float_of_int docs_total /. wall);
          (if label = "no tracer" then "--"
           else Printf.sprintf "%+.1f%%" overhead);
          (match tracer with
          | None -> "--"
          | Some tracer -> string_of_int (Trace.completed tracer / rounds));
        ])
      tracers
  in
  print_table
    ~title:
      (Printf.sprintf "%d documents, Card(C)=%d, %d domains" docs_total card_c
         partitions)
    ~header:[ "tracing"; "wall s"; "docs/s"; "overhead"; "traces" ]
    rows

let all = [ ("tbl-trace-overhead", tbl_trace_overhead) ]
