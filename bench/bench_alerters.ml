(* Alerter experiments: URL-pattern detection (hash of prefixes vs
   dictionary/trie, paper §6.2) and the XML alerter's Size x Depth
   cost (paper §6.3). *)

open Harness
module Atomic = Xy_events.Atomic
module Registry = Xy_events.Registry
module Url_alerter = Xy_alerters.Url_alerter
module Xml_alerter = Xy_alerters.Xml_alerter
module Meta = Xy_warehouse.Meta
module Loader = Xy_warehouse.Loader
module Store = Xy_warehouse.Store
module Prng = Xy_util.Prng
module T = Xy_xml.Types

(* Synthetic URL space: hosts with path trees, patterns drawn from
   prefixes of real URLs so lookups actually hit. *)
let make_url prng =
  let host = Printf.sprintf "http://host%d.example.org" (Prng.int prng 1000) in
  let depth = 1 + Prng.int prng 4 in
  let path = String.concat "/" (List.init depth (fun _ -> Prng.word prng)) in
  Printf.sprintf "%s/%s" host path

let meta_of url =
  {
    Meta.url;
    docid = 0;
    kind = Meta.Xml_doc;
    domain = None;
    dtd = None;
    dtdid = None;
    signature = "";
    last_accessed = 0.;
    last_updated = 0.;
    version = 1;
  }

let tbl_url scale =
  section "tbl-url — URL 'extends' detection: hash-of-prefixes vs trie";
  note
    "paper SS6.2: a dictionary structure improved speed by about 30 percent \
     over the million-records hash table, but its memory overhead was too \
     high";
  let patterns =
    match scale with Quick -> 50_000 | Default -> 300_000 | Paper -> 1_000_000
  in
  let prng = Prng.create ~seed:61 in
  (* Build the pattern set once; half are prefixes of URLs we will look
     up, half are noise. *)
  let base_urls = Array.init (patterns / 2) (fun _ -> make_url prng) in
  let pattern_list =
    List.init patterns (fun i ->
        if i < Array.length base_urls then
          let url = base_urls.(i) in
          let cut = 10 + Prng.int prng (max 1 (String.length url - 10)) in
          String.sub url 0 (min cut (String.length url))
        else make_url prng)
  in
  let lookups =
    Array.init 2000 (fun i ->
        if i mod 2 = 0 then base_urls.(Prng.int prng (Array.length base_urls))
        else make_url prng)
  in
  let build impl =
    let registry = Registry.create () in
    let alerter = Url_alerter.create ~extends_impl:impl registry in
    List.iter
      (fun pattern -> ignore (Registry.register registry (Atomic.Url_extends pattern)))
      pattern_list;
    alerter
  in
  let measure impl =
    let alerter, words = live_words_of (fun () -> build impl) in
    let per_lookup =
      time_per_unit ~units:(Array.length lookups) (fun () ->
          Array.iter
            (fun url ->
              ignore
                (Url_alerter.detect alerter ~meta:(meta_of url)
                   ~status:Atomic.Unchanged))
            lookups)
    in
    (per_lookup, words, Url_alerter.approx_memory_words alerter)
  in
  let hash_time, hash_words, hash_model = measure Url_alerter.Hash_prefixes in
  let trie_time, trie_words, trie_model = measure Url_alerter.Trie in
  print_table
    ~title:(Printf.sprintf "%d patterns, 2000 lookups" patterns)
    ~header:[ "structure"; "us/lookup"; "measured MB"; "model MB"; "speedup vs hash" ]
    [
      [
        "hash prefixes";
        Printf.sprintf "%.2f" (microseconds hash_time);
        Printf.sprintf "%.0f" (megabytes hash_words);
        Printf.sprintf "%.0f" (megabytes hash_model);
        "1.00";
      ];
      [
        "trie";
        Printf.sprintf "%.2f" (microseconds trie_time);
        Printf.sprintf "%.0f" (megabytes trie_words);
        Printf.sprintf "%.0f" (megabytes trie_model);
        Printf.sprintf "%.2f" (hash_time /. trie_time);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* XML alerter: cost <= Size x Depth; throughput vs the crawler rate. *)

let deep_doc ~width ~depth ~interesting_every prng =
  (* A document of [width] branches each [depth] deep; every
     [interesting_every]-th word is one the alerter watches. *)
  let word i =
    if i mod interesting_every = 0 then "camera" else Prng.word prng
  in
  let rec spine level i =
    if level = 0 then [ T.text (word i) ]
    else [ T.el "section" (T.text (word (i + level)) :: spine (level - 1) i) ]
  in
  T.element "doc" (List.concat (List.init width (fun i -> spine depth (i * 37))))

let tbl_xml scale =
  section "tbl-xml — XML alerter: content detection cost";
  note
    "paper SS6.3: worst case Size x Depth lookups; for web XML the depth is \
     small, so the cost is acceptable and alerters sustain the crawler rate \
     (~50 docs/s per crawler)";
  let conditions = match scale with Quick -> 1_000 | Default | Paper -> 10_000 in
  let registry = Registry.create () in
  let alerter = Xml_alerter.create registry in
  let prng = Prng.create ~seed:71 in
  (* Register contains conditions over a realistic tag/word pool; make
     sure "camera"/"section" conditions are among them. *)
  ignore
    (Registry.register registry
       (Atomic.Element
          { change = None; tag = "section"; word = Some (Atomic.Anywhere, "camera") }));
  ignore
    (Registry.register registry
       (Atomic.Element
          { change = None; tag = "doc"; word = Some (Atomic.Strict, "camera") }));
  for _ = 1 to conditions - 2 do
    let tag = Printf.sprintf "tag%d" (Prng.int prng 500) in
    let word = Prng.word prng in
    ignore
      (Registry.register registry
         (Atomic.Element
            { change = None; tag; word = Some (Atomic.Anywhere, word) }))
  done;
  let clock = Xy_util.Clock.create () in
  let store = Store.create () in
  let loader = Loader.create ~store ~clock () in
  let shapes =
    [ (50, 2); (50, 8); (50, 32); (200, 2); (200, 8); (200, 32); (800, 8) ]
  in
  let rows =
    List.map
      (fun (width, depth) ->
        let doc = deep_doc ~width ~depth ~interesting_every:11 prng in
        let content = Xy_xml.Printer.element_to_string doc in
        let url = Printf.sprintf "http://x/%d-%d.xml" width depth in
        let result = Loader.load loader ~url ~content ~kind:Loader.Xml in
        let per_doc =
          time_per_unit ~units:1 (fun () ->
              ignore (Xml_alerter.detect alerter ~result))
        in
        let size = T.size doc and d = T.depth doc in
        [
          string_of_int size;
          string_of_int d;
          Printf.sprintf "%.0f" (microseconds per_doc);
          Printf.sprintf "%.0f" (1. /. per_doc);
          Printf.sprintf "%.3f"
            (microseconds per_doc /. float_of_int (size * d));
        ])
      shapes
  in
  print_table
    ~title:
      (Printf.sprintf "content detection, %d registered conditions" conditions)
    ~header:[ "size (nodes)"; "depth"; "us/doc"; "docs/s"; "us/(size*depth)" ]
    rows

let all = [ ("tbl-url", tbl_url); ("tbl-xml", tbl_xml) ]
