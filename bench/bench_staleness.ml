(* Staleness experiment: how fresh the monitoring actually is as a
   function of the crawler's per-step fetch budget.  The paper's
   freshness argument (§2.2) is that page-importance-driven refresh
   keeps subscribers' views close to the live web; this table
   quantifies the end-to-end lag of the reproduction — from the
   moment a page mutates on the synthetic web (its birth stamp) to
   the moment the crawler detects it (detection lag) and to the
   moment a report carrying it fires (notification lag) — under
   increasingly starved fetch budgets.  The quantiles come straight
   out of the xy_obs staleness histograms, i.e. the same numbers the
   /metrics telemetry endpoint exports. *)

open Harness
module Xyleme = Xy_system.Xyleme
module Web = Xy_crawler.Synthetic_web
module Sink = Xy_reporter.Sink
module Obs = Xy_obs.Obs

let budgets = function
  | Quick -> [ 4; 32 ]
  | Default -> [ 4; 16; 64 ]
  | Paper -> [ 4; 16; 64; 256 ]

let sub_text i ~sites =
  Printf.sprintf
    {|subscription S%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when count > 2 atmost daily|}
    i (i mod sites)

let hours seconds = seconds /. 3600.

(* Pull a staleness histogram out of the snapshot; an absent or empty
   histogram renders as zeros rather than crashing the bench. *)
let lag_quantiles snapshot ~stage name =
  match Obs.Snapshot.find snapshot ~stage name with
  | Some (Obs.Snapshot.Histogram h) when h.Obs.Snapshot.count > 0 ->
      ( Obs.Snapshot.quantile h 0.50,
        Obs.Snapshot.quantile h 0.95,
        Obs.Snapshot.quantile h 0.99 )
  | _ -> (0., 0., 0.)

let tbl_staleness scale =
  section "tbl-staleness — end-to-end staleness vs fetch budget";
  note
    "every synthetic-web mutation carries its virtual birth time; the \
     crawler observes birth->fetch as detection lag and the reporter \
     observes birth->report as notification lag (both in the \
     staleness histograms the telemetry endpoint exports); quantiles \
     below are virtual hours over a fortnight of simulated crawling \
     at a 6h step";
  let sites = 12 in
  let pages_per_site = 6 in
  let subscriptions =
    match scale with Quick -> 60 | Default -> 200 | Paper -> 400
  in
  let days = match scale with Quick -> 8. | Default -> 14. | Paper -> 28. in
  let step = 6. *. 3600. in
  let rows =
    List.map
      (fun budget ->
        let web = Web.generate ~seed:21 ~sites ~pages_per_site () in
        let sink, _ = Sink.counting () in
        let obs = Obs.create () in
        let xyleme = Xyleme.create ~seed:21 ~sink ~web ~obs () in
        for i = 0 to subscriptions - 1 do
          match
            Xyleme.subscribe xyleme
              ~owner:(Printf.sprintf "u%d" i)
              ~text:(sub_text i ~sites)
          with
          | Ok _ -> ()
          | Error e -> failwith (Xy_submgr.Manager.error_to_string e)
        done;
        let (), wall =
          time_once (fun () ->
              Xyleme.run xyleme ~days ~step ~fetch_limit:budget)
        in
        let stats = Xyleme.stats xyleme in
        let snapshot = Obs.snapshot obs in
        let d50, d95, d99 =
          lag_quantiles snapshot ~stage:"crawler" "detection_lag"
        in
        let n50, n95, n99 =
          lag_quantiles snapshot ~stage:"reporter" "notification_lag"
        in
        let docs_per_sec = float_of_int stats.Xyleme.documents_fetched /. wall in
        (* probes_per_doc carries the headline freshness number: the
           p99 notification lag in virtual hours. *)
        record_mqp
          ~name:(Printf.sprintf "tbl-staleness/budget@%d" budget)
          ~docs_per_sec
          ~probes_per_doc:(hours n99)
          ~memory_words:(stats.Xyleme.documents_stored) ();
        record_mqp
          ~name:(Printf.sprintf "tbl-staleness/detect@%d" budget)
          ~docs_per_sec
          ~probes_per_doc:(hours d99)
          ~memory_words:(stats.Xyleme.documents_stored) ();
        [
          string_of_int budget;
          string_of_int stats.Xyleme.documents_fetched;
          Printf.sprintf "%.1f" (hours d50);
          Printf.sprintf "%.1f" (hours d95);
          Printf.sprintf "%.1f" (hours d99);
          Printf.sprintf "%.1f" (hours n50);
          Printf.sprintf "%.1f" (hours n95);
          Printf.sprintf "%.1f" (hours n99);
        ])
      (budgets scale)
  in
  print_table ~title:"tbl-staleness: staleness quantiles vs fetch budget"
    ~header:
      [
        "fetch/step";
        "fetched";
        "detect p50 (h)";
        "p95";
        "p99";
        "notify p50 (h)";
        "p95";
        "p99";
      ]
    rows;
  note
    "starving the fetch budget stretches detection lag first; \
     notification lag adds the report schedule's atmost window on \
     top, so it floors near the reporting period even when the \
     crawler keeps up";
  emit_snapshot ~label:"tbl-staleness"

let all = [ ("tbl-staleness", tbl_staleness) ]
