(* Monitoring Query Processor experiments: Figures 5 and 6 and the
   quantified claims of paper §4.2 (b-independence, throughput,
   memory, algorithm comparison, distribution). *)

open Harness
module Workload = Xy_core.Workload
module Mqp = Xy_core.Mqp
module Aes = Xy_core.Aes
module Aes_compact = Xy_core.Aes_compact
module Partition = Xy_core.Partition
module Event_set = Xy_events.Event_set

let docs_for_timing = 200

(* Average time to match one document event set, in seconds. *)
let time_match_set mqp docs =
  let n = Array.length docs in
  time_per_unit ~units:n (fun () ->
      Array.iter
        (fun events ->
          ignore (Mqp.process mqp { Mqp.url = ""; events; payload = ""; trace = None; birth = None }))
        docs)

(* ------------------------------------------------------------------ *)
(* Figure 5: time per document vs Card(S), one line per Card(C). *)

let fig5 scale =
  section
    "fig5 — Figure 5: time to process a document (us) as a function of \
     Card(S)";
  note
    "paper: linear in Card(S); about 1 ms at Card(S)=100 with Card(C)=10^6 \
     (Card(A)=10^5, b=3)";
  let card_cs =
    match scale with
    | Quick -> [ 1_000; 10_000; 100_000 ]
    | Default | Paper -> [ 10_000; 100_000; 1_000_000 ]
  in
  let s_values =
    match scale with
    | Quick -> [ 10; 30; 50; 100 ]
    | Default | Paper -> [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
  in
  let card_a = 100_000 in
  let header =
    "Card(S)" :: List.map (fun c -> Printf.sprintf "Card(C)=%d" c) card_cs
  in
  (* Load one processor per Card(C); reuse across the s sweep. *)
  let mqps =
    List.map
      (fun card_c ->
        let workload = { Workload.card_a; card_c; b = 3; s = 0 } in
        (card_c, Workload.load_mqp workload ~seed:11))
      card_cs
  in
  let rows =
    List.map
      (fun s ->
        let cells =
          List.map
            (fun (card_c, mqp) ->
              let workload = { Workload.card_a; card_c; b = 3; s } in
              let docs =
                Workload.document_sets workload ~seed:(100 + s)
                  ~count:docs_for_timing
              in
              Printf.sprintf "%.1f" (microseconds (time_match_set mqp docs)))
            mqps
        in
        string_of_int s :: cells)
      s_values
  in
  print_table ~title:"time per document (microseconds)" ~header rows

(* ------------------------------------------------------------------ *)
(* Figure 6: time per document vs log10 k. *)

let fig6 scale =
  section "fig6 — Figure 6: time per document (us) as a function of log(k)";
  note
    "paper: s=30, Card(A)=100000, b=4; k = b*Card(C)/Card(A) varies from b \
     to 100*b by varying Card(C) from 10^4 to 10^6; dependency is linear in \
     log k";
  let card_a = 100_000 and b = 4 and s = 30 in
  let card_cs =
    match scale with
    | Quick -> [ 10_000; 40_000; 160_000; 640_000 ]
    | Default | Paper ->
        [ 10_000; 20_000; 40_000; 80_000; 160_000; 320_000; 640_000; 1_000_000 ]
  in
  let rows =
    List.map
      (fun card_c ->
        let workload = { Workload.card_a; card_c; b; s } in
        let mqp = Workload.load_mqp workload ~seed:23 in
        let docs = Workload.document_sets workload ~seed:37 ~count:docs_for_timing in
        let per_doc = time_match_set mqp docs in
        [
          string_of_int card_c;
          Printf.sprintf "%.2f" (Workload.k workload);
          Printf.sprintf "%.2f" (log10 (Workload.k workload));
          Printf.sprintf "%.1f" (microseconds per_doc);
        ])
      card_cs
  in
  print_table ~title:"time per document vs k"
    ~header:[ "Card(C)"; "k"; "log10(k)"; "us/doc" ]
    rows

(* ------------------------------------------------------------------ *)
(* b-independence: "the complexity is independent of b for b in 2..10
   (s >> b)". *)

let tbl_b scale =
  section "tbl-b — independence of the complex-event arity b";
  note "paper: time per document independent of b for b in 2..10 (s >> b)";
  let card_a = 100_000 and s = 50 in
  let card_c = match scale with Quick -> 10_000 | Default | Paper -> 100_000 in
  let rows =
    List.map
      (fun b ->
        let workload = { Workload.card_a; card_c; b; s } in
        let mqp = Workload.load_mqp workload ~seed:5 in
        let docs = Workload.document_sets workload ~seed:17 ~count:docs_for_timing in
        [ string_of_int b; Printf.sprintf "%.1f" (microseconds (time_match_set mqp docs)) ])
      [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  print_table ~title:(Printf.sprintf "time per document (us), Card(C)=%d, s=%d" card_c s)
    ~header:[ "b"; "us/doc" ] rows

(* ------------------------------------------------------------------ *)
(* Throughput: "several thousand sets of atomic events per second",
   i.e. the MQP sustains ~100 crawlers at 50 docs/s each. *)

let tbl_thr scale =
  section "tbl-thr — MQP throughput (documents per second)";
  note
    "paper: several thousand event sets per second on a standard PC; one \
     crawler fetches ~50 docs/s, so the MQP sustains ~100 crawlers";
  let card_a = 100_000 and b = 3 and s = 30 in
  let card_c = match scale with Quick -> 100_000 | Default | Paper -> 1_000_000 in
  let workload = { Workload.card_a; card_c; b; s } in
  let mqp = Workload.load_mqp workload ~seed:3 in
  let docs = Workload.document_sets workload ~seed:7 ~count:1000 in
  let per_doc = time_match_set mqp docs in
  let per_second = 1. /. per_doc in
  record_mqp
    ~name:(Printf.sprintf "tbl-thr/aes/c=%d" card_c)
    ~docs_per_sec:per_second
    ~memory_words:(Mqp.approx_memory_words mqp) ();
  print_table
    ~title:"sustained matching rate"
    ~header:[ "Card(C)"; "us/doc"; "docs/s"; "docs/day"; "crawlers sustained (50 docs/s)" ]
    [
      [
        string_of_int card_c;
        Printf.sprintf "%.1f" (microseconds per_doc);
        Printf.sprintf "%.0f" per_second;
        Printf.sprintf "%.2e" (per_second *. 86400.);
        Printf.sprintf "%.0f" (per_second /. 50.);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Boxed hash-tree AES vs the frozen flat-array variant: throughput,
   memory and probe counts on the same workload.  Three configurations
   per Card(C): the boxed Aes, the compact structure fully frozen, and
   the compact structure with ~10% of the subscriptions living in the
   delta overlay (auto-refreeze disabled) — the worst steady state
   between two freezes. *)

let tbl_compact scale =
  section "tbl-compact — boxed AES vs frozen compact AES";
  note
    "aes-compact freezes the subscription set into flat sorted int arrays \
     (merge-join / binary-search matching, direct-address root); adds and \
     removes go to a delta overlay until the next re-freeze";
  let card_a = 100_000 and b = 4 and s = 30 in
  let card_cs =
    match scale with
    | Quick -> [ 10_000; 50_000 ]
    | Default | Paper -> [ 100_000; 1_000_000 ]
  in
  let time_matcher match_fn docs =
    let n = Array.length docs in
    time_per_unit ~units:n (fun () ->
        Array.iter (fun events -> ignore (match_fn events)) docs)
  in
  let rows =
    List.concat_map
      (fun card_c ->
        let workload = { Workload.card_a; card_c; b; s } in
        let events = Workload.complex_events workload ~seed:29 in
        let docs =
          Workload.document_sets workload ~seed:13 ~count:docs_for_timing
        in
        let n_docs = float_of_int (Array.length docs) in
        (* boxed hash-tree *)
        let aes = Aes.create () in
        Array.iteri (fun id set -> Aes.add aes ~id set) events;
        (* compact, fully frozen *)
        let frozen = Aes_compact.create () in
        Array.iteri (fun id set -> Aes_compact.add frozen ~id set) events;
        Aes_compact.freeze frozen;
        (* compact with ~10% of the set still in the delta overlay *)
        let dirty = Aes_compact.create () in
        Aes_compact.set_refreeze_threshold dirty (Some max_int);
        let cut = Array.length events - (Array.length events / 10) in
        Array.iteri
          (fun id set -> if id < cut then Aes_compact.add dirty ~id set)
          events;
        Aes_compact.freeze dirty;
        Array.iteri
          (fun id set -> if id >= cut then Aes_compact.add dirty ~id set)
          events;
        let measure name match_fn reset_probes probes memory_words =
          let per_doc = time_matcher match_fn docs in
          reset_probes ();
          Array.iter (fun events -> ignore (match_fn events)) docs;
          let probes_per_doc = float_of_int (probes ()) /. n_docs in
          record_mqp
            ~name:(Printf.sprintf "tbl-compact/%s/c=%d" name card_c)
            ~docs_per_sec:(1. /. per_doc) ~memory_words ~probes_per_doc ();
          [
            string_of_int card_c;
            name;
            Printf.sprintf "%.1f" (microseconds per_doc);
            Printf.sprintf "%.0f" (1. /. per_doc);
            Printf.sprintf "%.1f" (megabytes memory_words);
            Printf.sprintf "%.0f" probes_per_doc;
          ]
        in
        (* bind sequentially: list elements evaluate right-to-left,
           which would reverse the recorded JSON row order *)
        let row_boxed =
          measure "aes"
            (fun events -> Aes.match_set aes events)
            (fun () -> Aes.reset_probes aes)
            (fun () -> Aes.probes aes)
            (Aes.approx_memory_words aes)
        in
        let row_frozen =
          measure "aes-compact"
            (fun events -> Aes_compact.match_set frozen events)
            (fun () -> Aes_compact.reset_probes frozen)
            (fun () -> Aes_compact.probes frozen)
            (Aes_compact.approx_memory_words frozen)
        in
        let row_dirty =
          measure "aes-compact+10%delta"
            (fun events -> Aes_compact.match_set dirty events)
            (fun () -> Aes_compact.reset_probes dirty)
            (fun () -> Aes_compact.probes dirty)
            (Aes_compact.approx_memory_words dirty)
        in
        [ row_boxed; row_frozen; row_dirty ])
      card_cs
  in
  print_table
    ~title:
      (Printf.sprintf
         "boxed vs frozen matching, Card(A)=%d, b=%d, Card(S)=%d" card_a b s)
    ~header:[ "Card(C)"; "impl"; "us/doc"; "docs/s"; "model MB"; "probes/doc" ]
    rows

(* ------------------------------------------------------------------ *)
(* Memory: "about 500MB for Card(A)=10^6, Card(C)=10^6 and b=10". *)

let tbl_mem scale =
  section "tbl-mem — data-structure memory";
  note "paper: ~500 MB for Card(A)=10^6, Card(C)=10^6, b=10";
  let card_a, card_c, b =
    match scale with
    | Quick -> (100_000, 100_000, 10)
    | Default | Paper -> (1_000_000, 1_000_000, 10)
  in
  let workload = { Workload.card_a; card_c; b; s = 0 } in
  let mqp, words = live_words_of (fun () -> Workload.load_mqp workload ~seed:2) in
  let estimate = Mqp.approx_memory_words mqp in
  print_table ~title:"memory footprint"
    ~header:[ "Card(A)"; "Card(C)"; "b"; "measured MB (GC)"; "model MB" ]
    [
      [
        string_of_int card_a;
        string_of_int card_c;
        string_of_int b;
        Printf.sprintf "%.0f" (megabytes words);
        Printf.sprintf "%.0f" (megabytes estimate);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Algorithm comparison: AES vs the candidate algorithms the paper
   rejected (per-candidate subset testing; counting — "exponential in
   that factor [k]" in the worst case for their candidate). *)

let tbl_algo scale =
  section "tbl-algo — Atomic Event Sets vs baseline algorithms";
  note
    "paper SS4.1: alternatives considered were sensitive to k (complex \
     events per atomic event); AES was chosen for its behaviour across all \
     three parameters";
  let card_a = 100_000 and b = 4 and s = 30 in
  let card_cs =
    match scale with
    | Quick -> [ 10_000; 100_000 ]
    | Default | Paper -> [ 10_000; 100_000; 1_000_000 ]
  in
  let algorithms =
    [ ("aes", Mqp.Use_aes); ("naive", Mqp.Use_naive); ("counting", Mqp.Use_counting) ]
  in
  let rows =
    List.map
      (fun card_c ->
        let workload = { Workload.card_a; card_c; b; s } in
        let docs = Workload.document_sets workload ~seed:13 ~count:docs_for_timing in
        let cells =
          List.map
            (fun (_, algorithm) ->
              let mqp = Workload.load_mqp ~algorithm workload ~seed:29 in
              Printf.sprintf "%.1f" (microseconds (time_match_set mqp docs)))
            algorithms
        in
        (string_of_int card_c
        :: Printf.sprintf "%.1f" (Workload.k workload)
        :: cells))
      card_cs
  in
  print_table ~title:"time per document (us) per algorithm"
    ~header:([ "Card(C)"; "k" ] @ List.map fst algorithms)
    rows

(* ------------------------------------------------------------------ *)
(* Distribution: the two axes of §4.2. *)

let tbl_dist scale =
  section "tbl-dist — distributed MQP (two partitioning axes)";
  note
    "paper: split the document flow for processing speed; split the \
     subscriptions for memory; both give a very scalable system";
  let card_a = 100_000 and b = 3 and s = 30 in
  let card_c = match scale with Quick -> 50_000 | Default | Paper -> 300_000 in
  let workload = { Workload.card_a; card_c; b; s } in
  let events = Workload.complex_events workload ~seed:41 in
  let docs = Workload.document_sets workload ~seed:43 ~count:docs_for_timing in
  let alerts =
    Array.mapi
      (fun i events ->
        { Mqp.url = Printf.sprintf "http://doc%d/" i; events; payload = ""; trace = None; birth = None })
      docs
  in
  let time_partition part =
    (* Wall time to push every alert through its route; for the
       document axis this is the aggregate work, which distribution
       divides across machines. *)
    time_per_unit ~units:(Array.length alerts) (fun () ->
        Array.iter (fun alert -> ignore (Partition.process part alert)) alerts)
  in
  let rows =
    List.concat_map
      (fun (axis_name, axis) ->
        List.map
          (fun partitions ->
            let part = Partition.create axis ~partitions in
            Array.iteri (fun id set -> Partition.subscribe part ~id set) events;
            let per_doc = time_partition part in
            let memories = Partition.memory_per_partition part in
            let max_memory = Array.fold_left max 0 memories in
            (* Per-machine work: on the documents axis each alert
               visits one partition, so a machine sees 1/p of the
               flow; on the subscriptions axis every machine sees the
               full flow but holds 1/p of the structure. *)
            let per_machine_rate =
              match axis with
              | Partition.By_documents ->
                  float_of_int partitions /. per_doc
              | Partition.By_subscriptions ->
                  (* every partition processes all docs, in parallel:
                     aggregate wall time ~ slowest partition; the
                     sequential measurement sums them *)
                  float_of_int partitions /. per_doc
            in
            [
              axis_name;
              string_of_int partitions;
              Printf.sprintf "%.1f" (microseconds per_doc);
              Printf.sprintf "%.0f" per_machine_rate;
              Printf.sprintf "%.1f" (megabytes max_memory);
            ])
          [ 1; 2; 4; 8 ])
      [ ("documents", Partition.By_documents); ("subscriptions", Partition.By_subscriptions) ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "partitioned processing, Card(C)=%d (sequential simulation; rate \
          column models p parallel machines)"
         card_c)
    ~header:
      [ "axis"; "partitions"; "us/doc (total work)"; "docs/s (cluster)"; "max MB/partition" ]
    rows

(* ------------------------------------------------------------------ *)
(* AES structural statistics — sanity numbers behind the analysis
   ("the substructure contains O(k) cells"). *)

let tbl_aes_stats scale =
  section "tbl-aes-stats — AES hash-tree shape";
  let card_a = 100_000 and b = 4 in
  let card_c = match scale with Quick -> 50_000 | Default | Paper -> 500_000 in
  let workload = { Workload.card_a; card_c; b; s = 0 } in
  let aes = Aes.create () in
  Array.iteri
    (fun id set -> Aes.add aes ~id set)
    (Workload.complex_events workload ~seed:51);
  let stats = Aes.stats aes in
  print_table ~title:"structure statistics"
    ~header:[ "Card(C)"; "tables"; "cells"; "marks"; "max depth"; "cells/complex" ]
    [
      [
        string_of_int card_c;
        string_of_int stats.Aes.tables;
        string_of_int stats.Aes.cells;
        string_of_int stats.Aes.marks;
        string_of_int stats.Aes.max_depth;
        Printf.sprintf "%.2f" (float_of_int stats.Aes.cells /. float_of_int card_c);
      ];
    ]

(* Real parallel distribution: the paper simulates scale-out by
   partitioning across machines; on OCaml 5 we can actually run the
   document-axis partitioning on separate domains (cores) and measure
   wall-clock speedup.  Each domain owns a full copy of the structure
   (exactly the paper's axis-1 deployment: every machine holds all
   subscriptions, the document flow is split). *)
let tbl_dist_par scale =
  section "tbl-dist-par — document-axis distribution on real cores";
  note
    "paper: 'we can split the flow of documents into several partitions and \
     assign a Monitoring Query Processor to each block' — here each \
     partition is an OCaml domain";
  let card_a = 100_000 and b = 3 and s = 30 in
  let card_c = match scale with Quick -> 50_000 | Default | Paper -> 200_000 in
  let docs_total = 20_000 in
  let workload = { Workload.card_a; card_c; b; s } in
  let docs = Workload.document_sets workload ~seed:61 ~count:docs_total in
  let available = max 1 (Domain.recommended_domain_count () - 1) in
  let partition_counts = List.filter (fun p -> p <= available) [ 1; 2; 4; 8 ] in
  let baseline = ref 0. in
  let rows =
    List.map
      (fun partitions ->
        (* one structure per domain, built outside the timed region *)
        let mqps =
          Array.init partitions (fun _ -> Workload.load_mqp workload ~seed:67)
        in
        let shards =
          Array.init partitions (fun shard ->
              Array.of_seq
                (Seq.filter_map
                   (fun i ->
                     if i mod partitions = shard then Some docs.(i) else None)
                   (Seq.init docs_total Fun.id)))
        in
        Gc.major ();
        let start = Unix.gettimeofday () in
        let domains =
          Array.init partitions (fun shard ->
              Domain.spawn (fun () ->
                  let mqp = mqps.(shard) in
                  Array.iter
                    (fun events ->
                      ignore
                        (Mqp.process mqp { Mqp.url = ""; events; payload = ""; trace = None; birth = None }))
                    shards.(shard)))
        in
        Array.iter Domain.join domains;
        let elapsed = Unix.gettimeofday () -. start in
        if partitions = 1 then baseline := elapsed;
        [
          string_of_int partitions;
          Printf.sprintf "%.3f" elapsed;
          Printf.sprintf "%.0f" (float_of_int docs_total /. elapsed);
          Printf.sprintf "%.2fx" (!baseline /. elapsed);
        ])
      partition_counts
  in
  print_table
    ~title:
      (Printf.sprintf "%d documents, Card(C)=%d per partition (%d cores available)"
         docs_total card_c available)
    ~header:[ "domains"; "wall s"; "docs/s"; "speedup" ]
    rows

(* Probe counting: validate the complexity analysis by counting cell
   lookups instead of timing — immune to GC/cache noise. *)
let tbl_probes scale =
  section "tbl-probes — AES work per document (cell lookups, not time)";
  note
    "paper SS4.2 analysis: the substructure under an atomic event holds O(k) \
     cells; experimentation shows the algorithm runs in O(s * log k)";
  let card_a = 100_000 and b = 4 in
  let probes_per_doc ~card_c ~s =
    let workload = { Workload.card_a; card_c; b; s } in
    let aes = Aes.create () in
    Array.iteri
      (fun id set -> Aes.add aes ~id set)
      (Workload.complex_events workload ~seed:91);
    let docs = Workload.document_sets workload ~seed:93 ~count:500 in
    Aes.reset_probes aes;
    Array.iter (fun events -> ignore (Aes.match_set aes events)) docs;
    float_of_int (Aes.probes aes) /. float_of_int (Array.length docs)
  in
  (* sweep s at fixed k *)
  let card_c_for_s = match scale with Quick -> 50_000 | Default | Paper -> 200_000 in
  let rows_s =
    List.map
      (fun s ->
        let p = probes_per_doc ~card_c:card_c_for_s ~s in
        [ string_of_int s; Printf.sprintf "%.1f" p; Printf.sprintf "%.2f" (p /. float_of_int s) ])
      [ 10; 20; 40; 80 ]
  in
  print_table
    ~title:(Printf.sprintf "probes vs Card(S) at Card(C)=%d" card_c_for_s)
    ~header:[ "Card(S)"; "probes/doc"; "probes per event" ]
    rows_s;
  (* sweep k at fixed s *)
  let card_cs =
    match scale with
    | Quick -> [ 10_000; 100_000 ]
    | Default | Paper -> [ 10_000; 50_000; 200_000; 1_000_000 ]
  in
  let rows_k =
    List.map
      (fun card_c ->
        let workload = { Workload.card_a; card_c; b; s = 30 } in
        let p = probes_per_doc ~card_c ~s:30 in
        [
          string_of_int card_c;
          Printf.sprintf "%.2f" (Workload.k workload);
          Printf.sprintf "%.1f" p;
        ])
      card_cs
  in
  print_table ~title:"probes vs k at Card(S)=30"
    ~header:[ "Card(C)"; "k"; "probes/doc" ]
    rows_k

let all =
  [
    ("fig5", fig5);
    ("tbl-probes", tbl_probes);
    ("fig6", fig6);
    ("tbl-b", tbl_b);
    ("tbl-thr", tbl_thr);
    ("tbl-compact", tbl_compact);
    ("tbl-mem", tbl_mem);
    ("tbl-algo", tbl_algo);
    ("tbl-dist", tbl_dist);
    ("tbl-dist-par", tbl_dist_par);
    ("tbl-aes-stats", tbl_aes_stats);
  ]
