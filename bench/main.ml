(* Benchmark harness entry point.

   Reproduces every figure and table of the paper's evaluation (see
   DESIGN.md SS5 and EXPERIMENTS.md):

     fig5          Figure 5 (time per doc vs Card(S))
     fig6          Figure 6 (time per doc vs log k)
     tbl-b         arity independence
     tbl-thr       MQP throughput
     tbl-compact   boxed AES vs frozen compact AES
     tbl-mem       MQP memory
     tbl-algo      AES vs baselines
     tbl-dist      distributed MQP
     tbl-aes-stats structure shape
     tbl-url       URL alerter, hash vs trie
     tbl-xml       XML alerter Size x Depth
     tbl-rep       reporter throughput
     tbl-e2e       end-to-end pipeline rate
     tbl-e2e-mqp   MQP share of the pipeline
     tbl-fault     crawl throughput under fetch failures
     tbl-durable   checkpoint cost & warm-restart time
     tbl-staleness staleness quantiles vs fetch budget
     tbl-par-e2e   sharded pipeline scaling vs domains
     tbl-serve     serving surface register/fanout throughput
     tbl-chaos     fanout under seeded network fault plans

   Usage:
     dune exec bench/main.exe                  (default scale, all)
     dune exec bench/main.exe -- --quick       (CI scale)
     dune exec bench/main.exe -- --paper       (paper scale: 10^6 events)
     dune exec bench/main.exe -- --only fig5 --only tbl-url
     dune exec bench/main.exe -- --bechamel    (OLS kernel micro-benches)
     dune exec bench/main.exe -- --obs         (per-stage metrics snapshots)
     dune exec bench/main.exe -- --trace       (sampled per-document traces)
     dune exec bench/main.exe -- --json PATH   (MQP rows JSON; default BENCH_mqp.json) *)

let experiments : (string * (Harness.scale -> unit)) list =
  Bench_mqp.all @ Bench_alerters.all @ Bench_reporter.all @ Bench_e2e.all
  @ Bench_ablation.all @ Bench_trace.all @ Bench_fault.all @ Bench_durable.all
  @ Bench_staleness.all @ Bench_parallel.all @ Bench_serve.all
  @ Bench_chaos.all

let () =
  let scale = ref Harness.Default in
  let only = ref [] in
  let bechamel = ref false in
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | "--quick" :: rest ->
        scale := Harness.Quick;
        parse rest
    | "--paper" :: rest ->
        scale := Harness.Paper;
        parse rest
    | "--bechamel" :: rest ->
        bechamel := true;
        parse rest
    | "--obs" :: rest ->
        Harness.obs_enabled := true;
        parse rest
    | "--trace" :: rest ->
        Harness.enable_tracing ();
        parse rest
    | "--only" :: id :: rest ->
        only := id :: !only;
        parse rest
    | "--csv" :: dir :: rest ->
        Harness.csv_dir := Some dir;
        parse rest
    | "--json" :: path :: rest ->
        Harness.bench_json_path := path;
        parse rest
    | "--list" :: _ ->
        List.iter (fun (id, _) -> print_endline id) experiments;
        exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        exit 2
    | [] -> ()
  in
  parse args;
  Printf.printf "Xyleme monitoring benchmarks (scale: %s)\n"
    (Harness.scale_name !scale);
  Printf.printf
    "reproducing: Nguyen, Abiteboul, Cobena, Preda — Monitoring XML Data on \
     the Web (SIGMOD 2001)\n%!";
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
        List.iter
          (fun id ->
            if not (List.mem_assoc id experiments) then begin
              Printf.eprintf "unknown experiment %s (use --list)\n" id;
              exit 2
            end)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) experiments
  in
  Xy_obs.Obs.set_timer Unix.gettimeofday;
  Xy_obs.Obs.reset Xy_obs.Obs.default;
  List.iter
    (fun (id, run) ->
      run !scale;
      Harness.emit_snapshot ~label:id;
      Harness.emit_traces ~label:id)
    selected;
  Harness.write_mqp_json ~scale:(Harness.scale_name !scale);
  if !bechamel then Bench_bechamel.run ();
  print_newline ()
