(* Fault-tolerance experiment: throughput of the full crawl loop as
   the fetch-failure rate rises.  The paper's crawler works against
   the real web — "the Web changes", fetches fail — so the interesting
   number is how gracefully docs/sec degrades when 1%, 5%, 20% of
   fetches fail and every failure goes through the retry/backoff
   machinery (transient retries, exhaustion, demotion). *)

open Harness
module Xyleme = Xy_system.Xyleme
module Web = Xy_crawler.Synthetic_web
module Sink = Xy_reporter.Sink
module Obs = Xy_obs.Obs

let rates = [ 0.0; 0.01; 0.05; 0.20 ]

let tbl_fault scale =
  section "tbl-fault — crawl throughput under fetch failures";
  note
    "deterministic fault injection (seeded per-point PRNG): the same seed \
     and spec reproduce the same failure schedule; failed fetches are \
     retried with exponential backoff, repeat offenders demoted";
  let sites = match scale with Quick -> 8 | Default -> 20 | Paper -> 40 in
  let subscriptions =
    match scale with Quick -> 100 | Default -> 500 | Paper -> 2_000
  in
  let days = match scale with Quick -> 5. | Default -> 14. | Paper -> 30. in
  let rows =
    List.map
      (fun rate ->
        let obs = Obs.create () in
        let web = Web.generate ~seed:11 ~sites ~pages_per_site:8 () in
        let sink, delivered = Sink.counting () in
        let fault_plan = if rate = 0. then [] else [ ("fetch", rate) ] in
        let xyleme =
          Xyleme.create ~seed:11 ~fault_plan ~sink ~web ~obs ()
        in
        let accepted = ref 0 in
        for i = 0 to subscriptions - 1 do
          let text =
            Printf.sprintf
              {|subscription F%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when count > 5 atmost daily|}
              i (i mod sites)
          in
          match
            Xyleme.subscribe xyleme ~owner:(Printf.sprintf "u%d" i) ~text
          with
          | Ok _ -> incr accepted
          | Error _ -> ()
        done;
        let (), wall =
          time_once (fun () ->
              Xyleme.run xyleme ~days ~step:(6. *. 3600.) ~fetch_limit:500)
        in
        let stats = Xyleme.stats xyleme in
        let snapshot = Obs.snapshot obs in
        let fault name = Obs.Snapshot.counter_value snapshot ~stage:"fault" name in
        let fetched = stats.Xyleme.documents_fetched in
        let docs_per_sec = float_of_int fetched /. wall in
        record_mqp
          ~name:(Printf.sprintf "tbl-fault/fetch=%.2f" rate)
          ~docs_per_sec ~memory_words:0 ();
        [
          Printf.sprintf "%.0f%%" (rate *. 100.);
          string_of_int fetched;
          Printf.sprintf "%.0f" docs_per_sec;
          string_of_int (fault "fetch_failures");
          string_of_int (fault "fetch_retries");
          string_of_int (fault "retry_exhausted");
          string_of_int (fault "requeued_demoted");
          string_of_int stats.Xyleme.reports;
          string_of_int !delivered;
        ])
      rates
  in
  print_table ~title:"crawl loop under injected fetch failures"
    ~header:
      [
        "fail rate";
        "fetched";
        "docs/s";
        "failures";
        "retries";
        "exhausted";
        "demoted";
        "reports";
        "deliveries";
      ]
    rows

let all = [ ("tbl-fault", tbl_fault) ]
