(* tbl-serve: the serving surface under load.

   Two measurements against a live [Serve] instance on the loopback
   interface, at up to 10^3 concurrent subscriber connections:

   - register@N — connection setup throughput: TCP connect + HELLO
     handshake for N clients, sessions/sec.
   - fanout@N — report fan-out: every client receives [reports_each]
     REPORT frames (delivered round-robin, so all N outboxes are hot
     at once), reads them and acknowledges cumulatively; reports/sec
     end to end, plus the p99 delivery lag from the serve stage's
     [send_lag_seconds] histogram (deliver-to-socket-write, which is
     the server-side half of the paper's notification latency).

   The load generator lives in this process: clients are plain
   blocking sockets polled sequentially.  That understates nothing —
   the server's writer threads push frames concurrently, so by the
   time the generator reaches client i its frames are already queued
   in the kernel buffer; the sequential reads just drain them. *)

open Harness
module Serve = Xy_serve.Serve
module Frame = Xy_serve.Frame
module Obs = Xy_obs.Obs

let connections = function Quick -> 100 | Default -> 1000 | Paper -> 2000
let reports_each = function Quick -> 8 | Default -> 8 | Paper -> 16

type client = { fd : Unix.file_descr; dec : Frame.decoder }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  { fd; dec = Frame.decoder () }

let send c req =
  let frame = Frame.encode_request req in
  let n = String.length frame in
  let rec push off =
    if off < n then push (off + Unix.write_substring c.fd frame off (n - off))
  in
  push 0

let next_event c =
  let buf = Bytes.create 8192 in
  let rec go () =
    match Frame.next c.dec with
    | Error e -> failwith (Frame.error_to_string e)
    | Ok (Some payload) -> (
        match Frame.decode_event payload with
        | Ok ev -> ev
        | Error m -> failwith m)
    | Ok None -> (
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> failwith "server closed the connection"
        | n ->
            Frame.feed c.dec (Bytes.sub_string buf 0 n);
            go ())
  in
  go ()

let callbacks =
  {
    Serve.cb_subscribe = (fun ~owner ~text:_ -> Ok ("W" ^ owner));
    cb_unsubscribe = (fun _ -> Ok ());
    cb_status = (fun () -> "<health/>");
  }

let client_id i = Printf.sprintf "c%d" i

let run scale =
  let n = connections scale in
  let k = reports_each scale in
  let obs = Obs.create () in
  let s =
    Serve.create ~obs ~config:(Serve.config ~backlog:512 ~port:0 ()) ()
  in
  Serve.listen s ~callbacks;
  let port = Serve.port s in
  Fun.protect ~finally:(fun () -> Serve.stop s) @@ fun () ->
  (* -- register: connect + HELLO for every client ------------------- *)
  let clients, register_seconds =
    time_once (fun () ->
        Array.init n (fun i ->
            let c = connect port in
            send c (Frame.Hello (client_id i));
            (match next_event c with
            | Frame.Welcome _ -> ()
            | _ -> failwith "expected WELCOME");
            c))
  in
  let register_rate = float_of_int n /. register_seconds in
  (* -- fanout: k reports to each of the N outboxes ------------------ *)
  let total = n * k in
  let (), fanout_seconds =
    time_once (fun () ->
        for seq = 1 to k do
          for i = 0 to n - 1 do
            Serve.deliver s ~seq ~recipient:(client_id i) ~subscription:"W"
              ~at:(float_of_int seq)
              ~body:"<Report><UpdatedPage url=\"http://site0/p\"/></Report>"
          done
        done;
        Array.iter
          (fun c ->
            for _ = 1 to k do
              match next_event c with
              | Frame.Report _ -> ()
              | _ -> failwith "expected REPORT"
            done;
            (* cumulative ack: one frame retires the whole window *)
            send c (Frame.Ack k))
          clients;
        (* apply the queued acks until the pending store drains *)
        let deadline = Unix.gettimeofday () +. 60. in
        while Serve.pending_total s > 0 do
          if Unix.gettimeofday () > deadline then failwith "acks never drained";
          if Serve.pump s = 0 then Thread.yield ()
        done)
  in
  let fanout_rate = float_of_int total /. fanout_seconds in
  let p99_lag_ms =
    match Obs.Snapshot.find (Obs.snapshot obs) ~stage:"serve" "send_lag_seconds" with
    | Some (Obs.Snapshot.Histogram h) -> Obs.Snapshot.quantile h 0.99 *. 1e3
    | _ -> nan
  in
  (* live heap with the server and all N sessions still up *)
  Gc.full_major ();
  let memory_words = (Gc.stat ()).Gc.live_words in
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
  print_table ~title:(Printf.sprintf "tbl-serve (%d connections)" n)
    ~header:[ "phase"; "items"; "items/sec"; "p99 lag (ms)" ]
    [
      [ "register"; string_of_int n; Printf.sprintf "%.0f" register_rate; "-" ];
      [
        "fanout";
        string_of_int total;
        Printf.sprintf "%.0f" fanout_rate;
        Printf.sprintf "%.3f" p99_lag_ms;
      ];
    ];
  note "live heap with %d sessions: %d words" n memory_words;
  record_mqp
    ~name:(Printf.sprintf "tbl-serve/register@%d" n)
    ~docs_per_sec:register_rate ~memory_words ();
  record_mqp ~p99_lag_ms
    ~name:(Printf.sprintf "tbl-serve/fanout@%d" n)
    ~docs_per_sec:fanout_rate ~memory_words ()

let all = [ ("tbl-serve", run) ]
