(* Durability experiment: what checkpoint + warm restart cost as the
   subscription population grows.  The paper's system is meant to run
   unattended against the web for months, so the numbers that matter
   are (a) how long a checkpoint stalls the pipeline — separated into
   the *cold* first checkpoint (a full snapshot of every stage) and
   the *steady-state* pause (incremental: only stages dirtied since
   the previous generation are re-encoded, the rest carried forward
   by reference, log compaction amortised into the crawl loop) — and
   (b) how long a warm restart takes before the crawler is fetching
   again. *)

open Harness
module Xyleme = Xy_system.Xyleme
module Web = Xy_crawler.Synthetic_web
module Sink = Xy_reporter.Sink
module Obs = Xy_obs.Obs
module Manager = Xy_submgr.Manager

let sub_counts = function
  | Quick -> [ 1_000; 5_000 ]
  | Default -> [ 1_000; 10_000; 50_000 ]
  | Paper -> [ 1_000; 10_000; 50_000; 100_000 ]

let rm_rf path =
  let rec go p =
    if Sys.is_directory p then (
      Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p)
    else Sys.remove p
  in
  if Sys.file_exists path then go path

let with_temp_dir f =
  let dir = Filename.temp_file "xyleme-bench-durable" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let file_size path =
  if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0

(* The WAL of a generation is segmented: gen-N.wal, gen-N.wal.1, ... *)
let wal_size dir ~gen =
  let prefix = Printf.sprintf "gen-%d.wal" gen in
  Array.fold_left
    (fun acc name ->
      if
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
      then acc + file_size (Filename.concat dir name)
      else acc)
    0 (Sys.readdir dir)

let sub_text i ~sites =
  Printf.sprintf
    {|subscription D%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when count > 2 atmost daily|}
    i (i mod sites)

let tbl_durable scale =
  section "tbl-durable — checkpoint pause and warm-restart time";
  note
    "a durable run group-commits journalled txns into segmented \
     gen-N.wal files; the first checkpoint snapshots every stage (cold, \
     full), later ones only the stages dirtied since the previous \
     generation (steady, incremental — clean sections carried forward \
     by reference) while subscription-log and report-ledger compaction \
     run incrementally inside the crawl loop; restore replays \
     subscriptions + snapshot + WAL and re-arms in-flight work";
  let sites = 8 in
  let step = 6. *. 3600. in
  let rows =
    List.map
      (fun n ->
        with_temp_dir (fun dir ->
            let web = Web.generate ~seed:11 ~sites ~pages_per_site:6 () in
            let sink, _ = Sink.counting () in
            let xyleme =
              Xyleme.create ~seed:11 ~sink ~web ~obs:(Obs.create ())
                ~durable_dir:dir ()
            in
            (* Bulk-load through the manager: these subscriptions carry
               no refresh clauses, so the system-level wrapper's
               re-application of refresh ceilings (linear in the live
               population, quadratic for a bulk load) would be a no-op
               anyway. *)
            let mgr = Xyleme.manager xyleme in
            let (), load_wall =
              time_once (fun () ->
                  for i = 0 to n - 1 do
                    match
                      Manager.subscribe mgr
                        ~owner:(Printf.sprintf "u%d" i)
                        ~text:(sub_text i ~sites)
                    with
                    | Ok _ -> ()
                    | Error e ->
                        failwith (Manager.error_to_string e)
                  done)
            in
            (* A day of simulated crawling populates the warehouse and
               leaves a realistic WAL for the checkpoint to retire. *)
            Xyleme.run_resumable xyleme ~days:1. ~step ~fetch_limit:400;
            let wal_bytes = wal_size dir ~gen:0 in
            (* Cold: the first checkpoint has no previous generation to
               carry sections from — every stage snapshots inline. *)
            let _, ckpt_cold =
              time_once (fun () -> Xyleme.checkpoint xyleme)
            in
            (* Steady state: crawl one more step (days is cumulative),
               checkpoint again.  Only the stages that step dirtied
               are re-encoded; this pause is what the pipeline
               actually feels per checkpoint while running. *)
            Xyleme.run_resumable xyleme ~days:1.25 ~step ~fetch_limit:400;
            let info, ckpt_steady =
              time_once (fun () -> Xyleme.checkpoint xyleme)
            in
            let snap_bytes =
              file_size
                (Filename.concat dir
                   (Printf.sprintf "gen-%d.snap" info.Xyleme.generation))
            in
            let restored, restart_wall =
              time_once (fun () ->
                  let web = Web.generate ~seed:11 ~sites ~pages_per_site:6 () in
                  let sink, _ = Sink.counting () in
                  Xyleme.restore ~seed:11 ~sink ~web ~obs:(Obs.create ()) ~dir
                    ())
            in
            let ri =
              match restored with
              | Ok (_, ri) -> ri
              | Error e -> failwith ("restore failed: " ^ e)
            in
            assert (ri.Xyleme.subscriptions_recovered = n);
            record_mqp
              ~name:(Printf.sprintf "tbl-durable/checkpoint@%d" n)
              ~docs_per_sec:(1. /. ckpt_steady)
              ~memory_words:(snap_bytes / 8) ();
            (* the bounded-pause row: probes_per_doc carries the
               steady-state pause in milliseconds *)
            record_mqp
              ~name:(Printf.sprintf "tbl-durable/pause@%d" n)
              ~docs_per_sec:(1. /. ckpt_steady)
              ~probes_per_doc:(ckpt_steady *. 1e3)
              ~memory_words:(snap_bytes / 8) ();
            record_mqp
              ~name:(Printf.sprintf "tbl-durable/checkpoint-full@%d" n)
              ~docs_per_sec:(1. /. ckpt_cold)
              ~memory_words:(wal_bytes / 8) ();
            record_mqp
              ~name:(Printf.sprintf "tbl-durable/restart@%d" n)
              ~docs_per_sec:(float_of_int n /. restart_wall)
              ~memory_words:(wal_bytes / 8) ();
            [
              string_of_int n;
              Printf.sprintf "%.0f" (float_of_int n /. load_wall);
              Printf.sprintf "%.1f" (ckpt_cold *. 1e3);
              Printf.sprintf "%.1f" (ckpt_steady *. 1e3);
              Printf.sprintf "%d" (snap_bytes / 1024);
              Printf.sprintf "%d" (wal_bytes / 1024);
              Printf.sprintf "%.1f" (restart_wall *. 1e3);
              Printf.sprintf "%.0f" (float_of_int n /. restart_wall);
            ]))
      (sub_counts scale)
  in
  print_table ~title:"checkpoint & warm restart vs. subscription count"
    ~header:
      [
        "subs";
        "load subs/s";
        "full ckpt ms";
        "steady ckpt ms";
        "snap KiB";
        "wal KiB";
        "restart ms";
        "restart subs/s";
      ]
    rows

let all = [ ("tbl-durable", tbl_durable) ]
