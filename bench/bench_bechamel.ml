(* Bechamel micro-benchmarks for the hot kernels, one Test.make per
   experiment family.  The table-style experiments in the other
   modules reproduce the paper's figures; these give rigorous
   OLS-estimated per-run costs for the core operations. *)

open Bechamel
module Workload = Xy_core.Workload
module Mqp = Xy_core.Mqp
module Atomic = Xy_events.Atomic
module Registry = Xy_events.Registry
module Url_alerter = Xy_alerters.Url_alerter
module Meta = Xy_warehouse.Meta
module Prng = Xy_util.Prng

let mqp_kernel algorithm ~card_c =
  let workload = { Workload.card_a = 100_000; card_c; b = 3; s = 30 } in
  let mqp = Workload.load_mqp ~algorithm workload ~seed:11 in
  (* a single representative document keeps the per-run cost constant,
     which the OLS fit requires *)
  let docs = Workload.document_sets workload ~seed:13 ~count:1 in
  let events = docs.(0) in
  fun () -> ignore (Mqp.process mqp { Mqp.url = ""; events; payload = ""; trace = None; birth = None })

let url_kernel impl ~patterns =
  let prng = Prng.create ~seed:3 in
  let registry = Registry.create () in
  let alerter = Url_alerter.create ~extends_impl:impl registry in
  let urls =
    Array.init 256 (fun _ ->
        Printf.sprintf "http://host%d.example.org/%s/%s" (Prng.int prng 100)
          (Prng.word prng) (Prng.word prng))
  in
  for i = 0 to patterns - 1 do
    let url = urls.(i land 255) in
    let cut = 10 + Prng.int prng (String.length url - 10) in
    ignore (Registry.register registry (Atomic.Url_extends (String.sub url 0 cut)))
  done;
  let meta url =
    {
      Meta.url;
      docid = 0;
      kind = Meta.Xml_doc;
      domain = None;
      dtd = None;
      dtdid = None;
      signature = "";
      last_accessed = 0.;
      last_updated = 0.;
      version = 1;
    }
  in
  let url = urls.(0) in
  fun () ->
    ignore (Url_alerter.detect alerter ~meta:(meta url) ~status:Atomic.Unchanged)

let xml_parse_kernel () =
  let content =
    Xy_xml.Printer.element_to_string
      (Xy_xml.Types.element "catalog"
         (List.init 50 (fun i ->
              Xy_xml.Types.el "product"
                [
                  Xy_xml.Types.el "name" [ Xy_xml.Types.text (Printf.sprintf "item%d" i) ];
                  Xy_xml.Types.el "desc" [ Xy_xml.Types.text "a compact digital camera" ];
                ])))
  in
  fun () -> ignore (Xy_xml.Parser.parse_element content)

let tests =
  Test.make_grouped ~name:"xyleme"
    [
      Test.make ~name:"mqp/aes/C=100k" (Staged.stage (mqp_kernel Mqp.Use_aes ~card_c:100_000));
      Test.make ~name:"mqp/naive/C=100k"
        (Staged.stage (mqp_kernel Mqp.Use_naive ~card_c:100_000));
      Test.make ~name:"mqp/counting/C=100k"
        (Staged.stage (mqp_kernel Mqp.Use_counting ~card_c:100_000));
      Test.make ~name:"url/hash/100k" (Staged.stage (url_kernel Url_alerter.Hash_prefixes ~patterns:100_000));
      Test.make ~name:"url/trie/100k" (Staged.stage (url_kernel Url_alerter.Trie ~patterns:100_000));
      Test.make ~name:"xml/parse-50-products" (Staged.stage (xml_parse_kernel ()));
    ]

let run () =
  Harness.section "bechamel — OLS-estimated kernel costs";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> Printf.sprintf "%.1f" (e /. 1000.)
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      rows := [ name; estimate; r2 ] :: !rows)
    results;
  Harness.print_table ~title:"per-run cost (OLS on monotonic clock)"
    ~header:[ "kernel"; "us/run"; "r^2" ]
    (List.sort compare !rows)
