(* Reporter experiments: notification throughput ("over 2.4 million
   notifications per day") and the email bottleneck ("hundreds of
   thousands of emails per day ... due to the UNIX send-mail daemon"). *)

open Harness
module Reporter = Xy_reporter.Reporter
module Notification = Xy_reporter.Notification
module Sink = Xy_reporter.Sink
module S = Xy_sublang.S_ast
module Clock = Xy_util.Clock
module T = Xy_xml.Types

let spec ?atmost when_ =
  { S.r_query = None; r_when = when_; r_atmost = atmost; r_archive = None }

let tbl_rep scale =
  section "tbl-rep — Reporter throughput";
  note
    "paper SS3: the subscription system processes over 2.4 million \
     notifications per day and hundreds of thousands of emails per day on a \
     single PC (bounded by sendmail)";
  let subscriptions =
    match scale with Quick -> 200 | Default -> 1_000 | Paper -> 5_000
  in
  let notifications = match scale with Quick -> 20_000 | Default | Paper -> 100_000 in
  (* 1. Raw notification intake: batched reports (count > 100) into a
     null sink — measures buffering + condition evaluation. *)
  let clock = Clock.create () in
  let reporter = Reporter.create ~clock ~sink:(Sink.null ()) () in
  for i = 0 to subscriptions - 1 do
    Reporter.register reporter
      ~subscription:(Printf.sprintf "S%d" i)
      ~recipient:(Printf.sprintf "user%d@example.org" i)
      (spec [ S.R_count 100 ])
  done;
  let body = [ T.el "UpdatedPage" ~attrs:[ ("url", "http://x/") ] [] ] in
  let notification =
    { Notification.source = Notification.Monitoring; tag = "UpdatedPage"; body;
      at = 0.; birth = None; rendered = None }
  in
  let per_notification =
    time_per_unit ~units:notifications (fun () ->
        for i = 0 to notifications - 1 do
          Reporter.notify reporter
            ~subscription:(Printf.sprintf "S%d" (i mod subscriptions))
            notification
        done)
  in
  let intake_per_day = 86400. /. per_notification in
  (* 2. Email-bound delivery: immediate reports into a simulated
     sendmail with 0.25 s per mail (the paper-era daemon cost); the
     virtual clock advances per mail, giving the mails/day bound. *)
  let clock2 = Clock.create () in
  let smtp, sent = Sink.simulated_smtp ~per_mail_seconds:0.25 ~clock:clock2 in
  let reporter2 = Reporter.create ~clock:clock2 ~sink:smtp () in
  Reporter.register reporter2 ~subscription:"S" ~recipient:"r"
    (spec [ S.R_immediate ]);
  let mails = match scale with Quick -> 2_000 | Default | Paper -> 20_000 in
  let _, wall =
    time_once (fun () ->
        for _ = 1 to mails do
          Reporter.notify reporter2 ~subscription:"S" notification
        done)
  in
  let virtual_days = Clock.now clock2 /. 86400. in
  print_table ~title:"notification intake (null sink)"
    ~header:[ "subscriptions"; "us/notification"; "notifications/day" ]
    [
      [
        string_of_int subscriptions;
        Printf.sprintf "%.2f" (microseconds per_notification);
        Printf.sprintf "%.2e" intake_per_day;
      ];
    ];
  print_table ~title:"email-bound delivery (simulated sendmail @ 0.25 s/mail)"
    ~header:
      [ "mails sent"; "virtual days consumed"; "mails/day (sendmail bound)"; "wall s" ]
    [
      [
        string_of_int !sent;
        Printf.sprintf "%.2f" virtual_days;
        Printf.sprintf "%.2e" (float_of_int !sent /. virtual_days);
        Printf.sprintf "%.2f" wall;
      ];
    ]

let all = [ ("tbl-rep", tbl_rep) ]
