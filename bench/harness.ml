(* Shared benchmark plumbing: wall-clock timing, adaptive repetition,
   table rendering, and the scale (quick / default / paper) knob. *)

type scale = Quick | Default | Paper

let scale_name = function Quick -> "quick" | Default -> "default" | Paper -> "paper"

(* [time_per_unit ~min_time f units] runs [f] (which processes [units]
   work items) repeatedly until [min_time] seconds elapsed, and
   returns the average seconds per unit. *)
let time_per_unit ?(min_time = 0.1) ~units f =
  (* Warm up and settle the GC, then take the best of three timed
     passes — the minimum is the standard estimator for
     micro-benchmarks, immune to one-off GC or scheduler hiccups. *)
  f ();
  Gc.major ();
  let one_pass () =
    let start = Unix.gettimeofday () in
    let rec go repetitions =
      f ();
      let elapsed = Unix.gettimeofday () -. start in
      if elapsed < min_time then go (repetitions + 1) else (repetitions, elapsed)
    in
    let repetitions, elapsed = go 1 in
    elapsed /. float_of_int (repetitions * units)
  in
  let a = one_pass () in
  let b = one_pass () in
  let c = one_pass () in
  Float.min a (Float.min b c)

(* [time_once f] runs [f] once and returns (result, seconds). *)
let time_once f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let microseconds seconds = seconds *. 1e6

(* Optional CSV dump: when [csv_dir] is set (--csv), every table is
   also written to <dir>/<slug>.csv so the series can be re-plotted
   with any tool. *)
let csv_dir : string option ref = ref None

let slug_of title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title

let write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (slug_of title ^ ".csv") in
      let oc = open_out path in
      let quote cell =
        if String.exists (fun c -> c = ',' || c = '"') cell then
          "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
        else cell
      in
      List.iter
        (fun row -> output_string oc (String.concat "," (List.map quote row) ^ "\n"))
        (header :: rows);
      close_out oc

(* Table rendering: fixed-width columns, header + rows. *)
let print_table ~title ~header rows =
  write_csv ~title ~header rows;
  Printf.printf "\n## %s\n\n" title;
  let all = header :: rows in
  let columns = List.length header in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          0 all)
  in
  let print_row row =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let section title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* Per-stage metrics emission: with --obs every experiment is followed
   by the snapshot accumulated in the default xy_obs registry (then
   reset), so a timing regression is attributable to a pipeline
   stage. *)
let obs_enabled = ref false

let emit_snapshot ~label =
  if !obs_enabled then begin
    let snapshot = Xy_obs.Obs.snapshot Xy_obs.Obs.default in
    if snapshot.Xy_obs.Obs.Snapshot.entries <> [] then begin
      Printf.printf "\n### %s: stage metrics\n\n%!" label;
      Format.printf "%a@." Xy_obs.Obs.Snapshot.pp snapshot
    end;
    Xy_obs.Obs.reset Xy_obs.Obs.default
  end

(* Per-document tracing across experiments: with --trace the tracer is
   switched to 1-in-100 sampling and end-to-end experiments that build
   a full system thread it through; each experiment is then followed
   by the retained traces' stage summary. *)
let trace_enabled = ref false
let tracer = Xy_trace.Trace.create ~capacity:64 ~sample_every:0 ~seed:97 ()

let enable_tracing () =
  trace_enabled := true;
  Xy_trace.Trace.set_timer Unix.gettimeofday;
  Xy_trace.Trace.set_sampling tracer ~every:100

let emit_traces ~label =
  if !trace_enabled then begin
    (match Xy_trace.Trace.summary tracer with
    | [] -> ()
    | stats ->
        Printf.printf "\n### %s: trace stage summary (%d trace(s) retained)\n\n%!"
          label
          (List.length (Xy_trace.Trace.traces tracer));
        List.iter
          (fun s ->
            Printf.printf "  %-12s %6d span(s)  total %9.3f ms  max %8.3f ms\n"
              s.Xy_trace.Trace.st_stage s.Xy_trace.Trace.st_spans
              (s.Xy_trace.Trace.st_total_wall *. 1e3)
              (s.Xy_trace.Trace.st_max_wall *. 1e3))
          stats;
        (match Xy_trace.Trace.slowest tracer ~k:1 with
        | [ slowest ] -> Format.printf "%a@." Xy_trace.Trace.pp_trace slowest
        | _ -> ()));
    Xy_trace.Trace.clear tracer
  end

(* Machine-readable MQP results: experiments record their headline
   rows with [record_mqp]; at the end of the run the accumulated rows
   are written as one JSON document (default BENCH_mqp.json, --json to
   override) so CI and EXPERIMENTS.md can consume the numbers without
   scraping the printed tables. *)
type mqp_row = {
  row_name : string;
  docs_per_sec : float;
  memory_words : int;
  probes_per_doc : float option;
  steals : int option;
  p99_lag_ms : float option;
}

let mqp_rows : mqp_row list ref = ref []

let record_mqp ?probes_per_doc ?steals ?p99_lag_ms ~name ~docs_per_sec
    ~memory_words () =
  mqp_rows :=
    { row_name = name; docs_per_sec; memory_words; probes_per_doc; steals;
      p99_lag_ms }
    :: !mqp_rows

let bench_json_path = ref "BENCH_mqp.json"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_mqp_json ~scale =
  match List.rev !mqp_rows with
  | [] -> ()
  | rows ->
      let oc = open_out !bench_json_path in
      Printf.fprintf oc
        "{\n  \"schema\": \"xyleme-bench-mqp/1\",\n  \"scale\": \"%s\",\n\
        \  \"rows\": [\n"
        (json_escape scale);
      let last = List.length rows - 1 in
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"name\": \"%s\", \"docs_per_sec\": %.1f, \
             \"memory_words\": %d%s}%s\n"
            (json_escape r.row_name) r.docs_per_sec r.memory_words
            ((match r.probes_per_doc with
             | None -> ""
             | Some p -> Printf.sprintf ", \"probes_per_doc\": %.1f" p)
            ^ (match r.steals with
              | None -> ""
              | Some s -> Printf.sprintf ", \"steals\": %d" s)
            ^
            match r.p99_lag_ms with
            | None -> ""
            | Some l -> Printf.sprintf ", \"p99_lag_ms\": %.3f" l)
            (if i = last then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      note "wrote %d MQP row(s) to %s" (List.length rows) !bench_json_path

(* Approximate live heap words attributable to building a structure. *)
let live_words_of build =
  Gc.compact ();
  let before = (Gc.stat ()).Gc.live_words in
  let structure = build () in
  Gc.compact ();
  let after = (Gc.stat ()).Gc.live_words in
  (structure, max 0 (after - before))

let megabytes words = float_of_int (words * Sys.word_size / 8) /. 1e6
