(* Change visualization: the XID diff and the "change editor in the
   spirit of MS-Word" the paper mentions in §5.2.

   We take two versions of a product catalog, compute the XID delta,
   and print (1) the delta document the versioning system stores,
   (2) the line summary, and (3) the merged view with
   change="inserted|updated|deleted" annotations.

   Run with:  dune exec examples/change_editor.exe *)

module Xid = Xy_xml.Xid
module Parser = Xy_xml.Parser
module Printer = Xy_xml.Printer
module Diff = Xy_diff.Diff
module Delta = Xy_diff.Delta
module Editor = Xy_diff.Editor

let version1 =
  {|<catalog>
  <product><name>tv-55</name><price>499</price><desc>a big television</desc></product>
  <product><name>radio-1</name><price>29</price><desc>portable radio</desc></product>
  <product><name>walkman</name><price>49</price><desc>tape player</desc></product>
</catalog>|}

let version2 =
  {|<catalog>
  <product><name>tv-55</name><price>449</price><desc>a big television</desc></product>
  <product><name>radio-1</name><price>29</price><desc>portable radio</desc></product>
  <product><name>dx-100</name><price>349</price><desc>a compact digital camera</desc></product>
</catalog>|}

let () =
  let gen = Xid.gen () in
  let old_tree = Xid.label gen (Parser.parse_element version1) in
  let delta, _new_tree = Diff.diff ~gen old_tree (Parser.parse_element version2) in

  print_endline "=== delta document (what the warehouse stores) ===";
  print_endline
    (Printer.element_to_string ~indent:2 (Delta.to_xml ~name:"catalog" delta));

  print_endline "\n=== summary ===";
  print_endline (Editor.summary_text ~old:old_tree delta);

  print_endline "\n=== merged view (change-annotated) ===";
  print_endline
    (Printer.element_to_string ~indent:2 (Editor.merged_view ~old:old_tree delta));

  (* The delta is invertible: reconstruct version 1 from version 2. *)
  let new_tree = Xy_diff.Apply.apply old_tree delta in
  let back = Xy_diff.Apply.apply new_tree (Delta.invert delta) in
  Printf.printf "\nround-trip through invert: %s\n"
    (if Xid.equal back old_tree then "exact" else "MISMATCH")
