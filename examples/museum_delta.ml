(* Continuous delta queries: the paper's §5.2 "AmsterdamPaintings"
   example.  A continuous query is evaluated twice a week over the
   warehouse's culture domain; with [delta], the first notification
   carries the full answer and later ones only the XID-based delta
   documents (<inserted>, <deleted>, <updated>).

   Run with:  dune exec examples/museum_delta.exe *)

module Xyleme = Xy_system.Xyleme
module Sink = Xy_reporter.Sink
module Loader = Xy_warehouse.Loader
module Printer = Xy_xml.Printer
module Clock = Xy_util.Clock

let museum_url = "http://museums.example.org/rijksmuseum.xml"

let museum_page titles =
  Printf.sprintf
    "<culture><museum><address>Amsterdam</address>%s</museum></culture>"
    (String.concat ""
       (List.map
          (fun title -> Printf.sprintf "<painting><title>%s</title></painting>" title)
          titles))

let subscription =
  {|subscription Museums
continuous delta AmsterdamPaintings
select p/title
from culture/museum m, m/painting p
where m/address contains "Amsterdam"
try biweekly
report when immediate
archive monthly|}

let () =
  let sink, deliveries = Sink.memory () in
  let xyleme = Xyleme.create ~sink () in

  (* Warehouse the museum page before subscribing. *)
  ignore
    (Xyleme.ingest xyleme ~url:museum_url
       ~content:(museum_page [ "Nightwatch"; "Milkmaid" ])
       ~kind:Loader.Xml);

  (match Xyleme.subscribe xyleme ~owner:"curator@example.org" ~text:subscription with
  | Ok name -> Printf.printf "subscribed: %s\n%!" name
  | Error e -> failwith (Xy_submgr.Manager.error_to_string e));

  let week = 7. *. Clock.day in
  let print_deliveries label =
    Printf.printf "=== %s\n" label;
    List.iteri
      (fun i d ->
        Printf.printf "report %d:\n%s\n" (i + 1)
          (Printer.element_to_string ~indent:2 d.Sink.report))
      (List.rev !deliveries)
  in

  (* Half a week: first evaluation -> full answer. *)
  Xyleme.advance xyleme ~seconds:(week /. 2.);
  print_deliveries "after the first biweekly evaluation (full answer)";

  (* The museum hangs a new painting; the next evaluation sends only
     the delta. *)
  ignore
    (Xyleme.ingest xyleme ~url:museum_url
       ~content:(museum_page [ "Nightwatch"; "Milkmaid"; "The Syndics" ])
       ~kind:Loader.Xml);
  Xyleme.advance xyleme ~seconds:(week /. 2.);
  print_deliveries "after a painting was added (delta document)";

  (* A painting leaves on loan: deletion delta. *)
  ignore
    (Xyleme.ingest xyleme ~url:museum_url
       ~content:(museum_page [ "Nightwatch"; "The Syndics" ])
       ~kind:Loader.Xml);
  Xyleme.advance xyleme ~seconds:(week /. 2.);
  print_deliveries "after a painting left (deletion delta)";

  (* A quiet half-week: no notification at all. *)
  let before = List.length !deliveries in
  Xyleme.advance xyleme ~seconds:(week /. 2.);
  Printf.printf "quiet period: %d new report(s) (expected 0)\n"
    (List.length !deliveries - before)
