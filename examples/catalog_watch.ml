(* Catalog watch: element-level monitoring of an e-commerce catalog
   (the paper's §5.1 motivating workload — "documents in a particular
   catalog containing a new product", "documents with a particular DTD
   containing an updated product containing the word camera").

   A synthetic merchant site publishes a catalog; products come and
   go and prices change.  Two subscriptions watch it:
     - NewCameras: new products mentioning "camera";
     - PriceMoves: any updated product (batched, at most one report
       per simulated day).

   Run with:  dune exec examples/catalog_watch.exe *)

module Xyleme = Xy_system.Xyleme
module Sink = Xy_reporter.Sink
module Loader = Xy_warehouse.Loader
module Printer = Xy_xml.Printer
module Clock = Xy_util.Clock

let catalog_url = "http://www.amazon.example/catalog/electronics.xml"
let dtd = "http://www.amazon.example/dtd/catalog.dtd"

let catalog products =
  Printf.sprintf
    {|<?xml version="1.0"?>
<!DOCTYPE catalog SYSTEM "%s">
<catalog>%s</catalog>|}
    dtd
    (String.concat ""
       (List.map
          (fun (name, price, desc) ->
            Printf.sprintf
              "<product><name>%s</name><price>%d</price><desc>%s</desc></product>"
              name price desc)
          products))

let new_cameras =
  Printf.sprintf
    {|subscription NewCameras
monitoring
select X
from self//product X
where new X contains "camera"
  and DTD = "%s"
report when immediate|}
    dtd

let price_moves =
  {|subscription PriceMoves
monitoring
select <UpdatedProduct page=URL/>
where updated self\\product
  and URL extends "http://www.amazon.example/catalog/"
report
when count > 0
atmost daily|}

let () =
  let sink, deliveries = Sink.memory () in
  let xyleme = Xyleme.create ~sink () in
  List.iter
    (fun text ->
      match Xyleme.subscribe xyleme ~owner:"shopper@example.org" ~text with
      | Ok name -> Printf.printf "subscribed: %s\n%!" name
      | Error e -> failwith (Xy_submgr.Manager.error_to_string e))
    [ new_cameras; price_moves ];

  let publish products =
    ignore
      (Xyleme.ingest xyleme ~url:catalog_url ~content:(catalog products)
         ~kind:Loader.Xml)
  in
  let show_new_deliveries label =
    Printf.printf "--- %s: %d report(s) so far\n" label (List.length !deliveries);
    match !deliveries with
    | d :: _ ->
        Printf.printf "latest (%s -> %s):\n%s\n" d.Sink.subscription
          d.Sink.recipient
          (Printer.element_to_string ~indent:2 d.Sink.report)
    | [] -> ()
  in

  (* Day 0: initial catalog. *)
  publish
    [ ("tv-55", 499, "a big television"); ("radio-1", 29, "portable radio") ];
  show_new_deliveries "initial load (no change events yet)";

  (* Day 1: a camera appears -> NewCameras fires immediately; the
     catalog change also updates products?  No: only the insertion. *)
  Xyleme.advance xyleme ~seconds:Clock.day;
  publish
    [
      ("tv-55", 499, "a big television");
      ("radio-1", 29, "portable radio");
      ("dx-100", 349, "a compact digital camera");
    ];
  show_new_deliveries "camera added";

  (* Day 2: the tv price drops -> PriceMoves batches it; a second
     price change the same day stays in the same (daily) report. *)
  Xyleme.advance xyleme ~seconds:Clock.day;
  publish
    [
      ("tv-55", 449, "a big television");
      ("radio-1", 29, "portable radio");
      ("dx-100", 349, "a compact digital camera");
    ];
  publish
    [
      ("tv-55", 449, "a big television");
      ("radio-1", 25, "portable radio");
      ("dx-100", 349, "a compact digital camera");
    ];
  Xyleme.advance xyleme ~seconds:Clock.day;
  show_new_deliveries "price changes (batched daily)";

  let stats = Xyleme.stats xyleme in
  Printf.printf
    "\nstats: %d notifications, %d reports, Card(A)=%d, Card(C)=%d\n"
    stats.Xyleme.notifications stats.Xyleme.reports stats.Xyleme.atomic_events
    stats.Xyleme.complex_events
