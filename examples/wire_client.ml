(* wire_client — a subscriber speaking the serving-surface protocol,
   used by the CI smoke jobs and handy for poking a running
   `xyleme serve` by hand.

     wire_client --port 9110 --id u0 --site 0 --await-reports 1

   Built on the supervised client ({!Xy_serve.Client}): the
   connection is dialed (and re-dialed) by a supervisor thread, the
   identity re-binds with HELLO after every drop, reports are
   acknowledged automatically and deduplicated by seq — so a
   mid-stream disconnect (or injected network fault) is survived
   transparently, and a report count short of the target at the
   deadline is a *timeout* (exit 3), never a protocol error.

   Exits 0 once satisfied, 2 on usage errors, 3 on timeout, 1 only
   when the server terminally rejects the subscription. *)

module Client = Xy_serve.Client

let port = ref 0
let id = ref "u0"
let site = ref 0
let await_reports = ref 1
let timeout = ref 60.
let status = ref false
let subscribe_file = ref ""
let quiet = ref false
let ping_interval = ref 5.
let hold = ref 0.
let no_subscribe = ref false

let usage = "wire_client --port PORT [options]"

let spec =
  [
    ("--port", Arg.Set_int port, "PORT server TCP port (required)");
    ("--id", Arg.Set_string id, "ID recipient identity (default u0)");
    ("--site", Arg.Set_int site, "N subscribe to synthetic site N (default 0)");
    ( "--subscribe-file",
      Arg.Set_string subscribe_file,
      "FILE subscription text to register (overrides --site)" );
    ( "--no-subscribe",
      Arg.Set no_subscribe,
      " register nothing: HELLO only (an existing identity resumes its \
       pending stream; a fresh one just idles)" );
    ( "--await-reports",
      Arg.Set_int await_reports,
      "N wait for N distinct report frames (default 1; 0 skips waiting)" );
    ("--timeout", Arg.Set_float timeout, "SECONDS overall deadline (default 60)");
    ("--status", Arg.Set status, " request STATUS and print the health XML");
    ( "--ping-interval",
      Arg.Set_float ping_interval,
      "SECONDS keepalive PING period (default 5; 0 disables — the server \
       may evict an idle client)" );
    ( "--hold",
      Arg.Set_float hold,
      "SECONDS keep the connection open after the target is met (exercises \
       keepalive/eviction; default 0)" );
    ("--quiet", Arg.Set quiet, " only print the final summary");
  ]

let say fmt =
  Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt

let () =
  Arg.parse spec (fun _ -> ()) usage;
  if !port = 0 then begin
    prerr_endline usage;
    exit 2
  end;
  let deadline = Unix.gettimeofday () +. !timeout in
  let remaining () = Float.max 0.01 (deadline -. Unix.gettimeofday ()) in
  let received = ref 0 in
  let mu = Mutex.create () in
  let on_report (r : Client.report) =
    Mutex.lock mu;
    incr received;
    Mutex.unlock mu;
    say "report seq=%d subscription=%s at=%.0f (%d bytes)" r.Client.seq
      r.Client.subscription r.Client.at
      (String.length r.Client.body)
  in
  let client =
    Client.connect ~on_report
      (Client.config ~port:!port ~id:!id ~ping_interval:!ping_interval
         ~pong_deadline:(2. *. Float.max 5. !ping_interval)
         ())
  in
  if not (Client.wait_connected ~timeout:(remaining ()) client) then begin
    prerr_endline "wire_client: connect timed out";
    exit 3
  end;
  say "connected as %s" !id;
  if !status then begin
    match Client.status ~timeout:(remaining ()) client with
    | Ok xml -> print_endline xml
    | Error "timeout" ->
        prerr_endline "wire_client: timed out waiting for STATUS";
        exit 3
    | Error m ->
        Printf.eprintf "wire_client: STATUS failed: %s\n" m;
        exit 1
  end;
  let text =
    if !subscribe_file <> "" then
      In_channel.with_open_bin !subscribe_file In_channel.input_all
    else
      Printf.sprintf
        {|subscription W%s
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when immediate|}
        !id !site
  in
  if not !no_subscribe then
    (match Client.subscribe ~timeout:(remaining ()) client ~owner:!id ~text with
    | Ok name -> say "subscribed %s" name
    | Error "timeout" ->
        prerr_endline "wire_client: timed out registering the subscription";
        exit 3
    | Error m ->
        (* a terminal verdict from the server, not a link failure *)
        Printf.eprintf "wire_client: subscription rejected: %s\n" m;
        exit 1);
  let target_met () =
    Mutex.lock mu;
    let n = !received in
    Mutex.unlock mu;
    n >= !await_reports
  in
  while not (target_met ()) do
    if Unix.gettimeofday () > deadline then begin
      Printf.eprintf
        "wire_client: timed out with %d of %d report(s)\n"
        !received !await_reports;
      Client.close client;
      exit 3
    end;
    Thread.delay 0.02
  done;
  if !hold > 0. then begin
    say "holding the connection for %gs" !hold;
    Thread.delay !hold
  end;
  let stats = Client.stats client in
  if stats.Client.reconnects > 0 || stats.Client.duplicates > 0 then
    say "link: %d reconnect(s), %d duplicate(s) suppressed"
      stats.Client.reconnects stats.Client.duplicates;
  Printf.printf "done: %d report(s) acknowledged\n" !received;
  Client.close client
