(* wire_client — a tiny subscriber speaking the serving-surface
   protocol, used by the CI smoke job and handy for poking a running
   `xyleme serve` by hand.

     wire_client --port 9110 --id u0 --site 0 --await-reports 1

   connects (retrying until the server is up), binds its identity
   with HELLO, registers a subscription on site N, then waits for the
   requested number of REPORT frames, acknowledging each by seq.
   Exits 0 once satisfied, 3 on timeout, 1 on a protocol error. *)

module Frame = Xy_serve.Frame

let port = ref 0
let id = ref "u0"
let site = ref 0
let await_reports = ref 1
let timeout = ref 60.
let status = ref false
let subscribe_file = ref ""
let quiet = ref false

let usage = "wire_client --port PORT [options]"

let spec =
  [
    ("--port", Arg.Set_int port, "PORT server TCP port (required)");
    ("--id", Arg.Set_string id, "ID recipient identity (default u0)");
    ("--site", Arg.Set_int site, "N subscribe to synthetic site N (default 0)");
    ( "--subscribe-file",
      Arg.Set_string subscribe_file,
      "FILE subscription text to register (overrides --site)" );
    ( "--await-reports",
      Arg.Set_int await_reports,
      "N wait for N report frames (default 1; 0 skips waiting)" );
    ("--timeout", Arg.Set_float timeout, "SECONDS overall deadline (default 60)");
    ("--status", Arg.Set status, " request STATUS and print the health XML");
    ("--quiet", Arg.Set quiet, " only print the final summary");
  ]

let say fmt =
  Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt

let connect ~deadline port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then begin
          prerr_endline "wire_client: connect timed out";
          exit 3
        end;
        Unix.sleepf 0.2;
        go ()
  in
  go ()

let send fd frame =
  let n = String.length frame in
  let rec push off =
    if off < n then push (off + Unix.write_substring fd frame off (n - off))
  in
  push 0

(* Blocking reads with a receive timeout backing the overall deadline:
   frames already buffered decode without touching the socket. *)
let next_event fd dec ~deadline =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Frame.next dec with
    | Error e ->
        Printf.eprintf "wire_client: %s\n" (Frame.error_to_string e);
        exit 1
    | Ok (Some payload) -> (
        match Frame.decode_event payload with
        | Ok ev -> ev
        | Error m ->
            Printf.eprintf "wire_client: bad event: %s\n" m;
            exit 1)
    | Ok None ->
        if Unix.gettimeofday () > deadline then begin
          prerr_endline "wire_client: timed out waiting for the server";
          exit 3
        end;
        (match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
            prerr_endline "wire_client: server closed the connection";
            exit 1
        | n -> Frame.feed dec (Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ());
        go ()
  in
  go ()

let () =
  Arg.parse spec (fun _ -> ()) usage;
  if !port = 0 then begin
    prerr_endline usage;
    exit 2
  end;
  let deadline = Unix.gettimeofday () +. !timeout in
  let fd = connect ~deadline !port in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
  let dec = Frame.decoder () in
  send fd (Frame.encode_request (Frame.Hello !id));
  (match next_event fd dec ~deadline with
  | Frame.Welcome pending -> say "connected as %s (%d pending)" !id pending
  | ev ->
      Printf.eprintf "wire_client: expected WELCOME, got %s\n"
        (match ev with Frame.Err m -> "ERR " ^ m | _ -> "another event");
      exit 1);
  if !status then begin
    send fd (Frame.encode_request Frame.Status);
    match next_event fd dec ~deadline with
    | Frame.Status_reply xml -> print_endline xml
    | _ ->
        prerr_endline "wire_client: expected STATUS reply";
        exit 1
  end;
  let text =
    if !subscribe_file <> "" then
      In_channel.with_open_bin !subscribe_file In_channel.input_all
    else
      Printf.sprintf
        {|subscription W%s
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when immediate|}
        !id !site
  in
  send fd (Frame.encode_request (Frame.Subscribe { owner = !id; text }));
  (match next_event fd dec ~deadline with
  | Frame.Okay name -> say "subscribed %s" name
  | Frame.Err m ->
      Printf.eprintf "wire_client: subscription rejected: %s\n" m;
      exit 1
  | _ ->
      prerr_endline "wire_client: expected OK";
      exit 1);
  let received = ref 0 in
  while !received < !await_reports do
    match next_event fd dec ~deadline with
    | Frame.Report { seq; subscription; at; body } ->
        incr received;
        say "report seq=%d subscription=%s at=%.0f (%d bytes)" seq subscription
          at (String.length body);
        send fd (Frame.encode_request (Frame.Ack seq))
    | Frame.Err m ->
        Printf.eprintf "wire_client: server error: %s\n" m;
        exit 1
    | _ -> ()
  done;
  Printf.printf "done: %d report(s) acknowledged\n" !received;
  Unix.close fd
