(* Quickstart: the paper's §2.2 "MyXyleme" subscription, end to end.

   We build a Xyleme instance, register the subscription (in the
   paper's concrete syntax), push a few fetched documents through the
   pipeline by hand, and print the XML report that reaches the
   subscriber's mailbox.

   Run with:  dune exec examples/quickstart.exe *)

module Xyleme = Xy_system.Xyleme
module Sink = Xy_reporter.Sink
module Loader = Xy_warehouse.Loader
module Printer = Xy_xml.Printer

let subscription =
  {|subscription MyXyleme

monitoring
select <UpdatedPage url=URL/>
where URL extends ``http://inria.fr/Xy/''
  and modified self

monitoring
select X
from self//Member X
where URL = ``http://inria.fr/Xy/members.xml''
  and new X

refresh ``http://inria.fr/Xy/members.xml'' weekly

report
when notifications.count > 2
|}

let () =
  (* Deliveries land in memory so we can print them. *)
  let sink, deliveries = Sink.memory () in
  let xyleme = Xyleme.create ~sink () in

  (match Xyleme.subscribe xyleme ~owner:"benjamin@inria.fr" ~text:subscription with
  | Ok name -> Printf.printf "subscribed: %s\n%!" name
  | Error e -> failwith (Xy_submgr.Manager.error_to_string e));

  let ingest url content =
    ignore (Xyleme.ingest xyleme ~url ~content ~kind:Loader.Xml)
  in

  (* Day 0: the crawler discovers the site. *)
  ingest "http://inria.fr/Xy/index.html" "<page>Welcome to Xyleme</page>";
  ingest "http://inria.fr/Xy/members.xml"
    "<team><Member><name>jouglet</name><fn>jeremie</fn></Member></team>";

  (* Later: both pages change; members.xml gains two new members. *)
  Xyleme.advance xyleme ~seconds:Xy_util.Clock.day;
  ingest "http://inria.fr/Xy/index.html" "<page>Welcome to Xyleme 2.0</page>";
  ingest "http://inria.fr/Xy/members.xml"
    "<team><Member><name>jouglet</name><fn>jeremie</fn></Member>\
     <Member><name>nguyen</name><fn>benjamin</fn></Member>\
     <Member><name>preda</name><fn>mihai</fn></Member></team>";

  (* The report condition (count > 2) is now satisfied: one report. *)
  (match !deliveries with
  | [] -> print_endline "no report (unexpected)"
  | d :: _ ->
      Printf.printf "report for %s, delivered to %s:\n%s\n" d.Sink.subscription
        d.Sink.recipient
        (Printer.element_to_string ~indent:2 d.Sink.report));

  let stats = Xyleme.stats xyleme in
  Printf.printf
    "\nstats: %d docs stored, %d alerts, %d notifications, %d report(s)\n"
    stats.Xyleme.documents_stored stats.Xyleme.alerts_sent
    stats.Xyleme.notifications stats.Xyleme.reports
