(* Distributed monitoring: the paper's two scale-out axes (§4.2) run
   as a real pipeline — feeder, one Monitoring Query Processor domain
   per partition, collector — connected by message queues (the Corba
   dataflow of Figure 3, in-process).

   Run with:  dune exec examples/distributed.exe -- [--card-c N] [--docs N] *)

module Distributed = Xy_system.Distributed
module Workload = Xy_core.Workload
module Mqp = Xy_core.Mqp

let () =
  let card_c = ref 100_000 and docs = ref 5_000 in
  let rec parse = function
    | "--card-c" :: n :: rest ->
        card_c := int_of_string n;
        parse rest
    | "--docs" :: n :: rest ->
        docs := int_of_string n;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));

  (* A small atomic-event universe keeps k high so that documents
     actually match subscriptions and notifications flow through the
     collector stage. *)
  let workload = { Workload.card_a = 2_000; card_c = !card_c; b = 3; s = 30 } in
  let subscriptions =
    Array.to_list
      (Array.mapi (fun id events -> (id, events))
         (Workload.complex_events workload ~seed:1))
  in
  let alerts =
    Array.to_list
      (Array.mapi
         (fun i events ->
           { Mqp.url = Printf.sprintf "http://doc%d/" i; events; payload = ""; trace = None; birth = None })
         (Workload.document_sets workload ~seed:2 ~count:!docs))
  in
  Printf.printf
    "workload: Card(C)=%d complex events, %d documents, %d cores recommended\n\n"
    !card_c !docs
    (Domain.recommended_domain_count ());
  Printf.printf "%-15s %-10s %-10s %-12s %s\n" "axis" "partitions" "wall s"
    "docs/s" "notifications";
  List.iter
    (fun (label, axis) ->
      List.iter
        (fun partitions ->
          let result =
            Distributed.run ~axis ~partitions ~subscriptions ~alerts ()
          in
          Printf.printf "%-15s %-10d %-10.3f %-12.0f %d\n%!" label partitions
            result.Distributed.wall_seconds
            (float_of_int !docs /. result.Distributed.wall_seconds)
            (List.length result.Distributed.notifications))
        [ 1; 2; 4 ])
    [
      ("documents", Distributed.Split_documents);
      ("subscriptions", Distributed.Split_subscriptions);
    ]
