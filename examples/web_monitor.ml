(* Web monitoring at (scaled) system size: the full pipeline —
   synthetic web, crawler with adaptive refresh, loader, alerters,
   Monitoring Query Processor, trigger engine, reporter — running for
   a simulated month with hundreds of subscriptions.

   Run with:  dune exec examples/web_monitor.exe -- [--sites N] [--days D] *)

module Xyleme = Xy_system.Xyleme
module Web = Xy_crawler.Synthetic_web
module Sink = Xy_reporter.Sink
module Clock = Xy_util.Clock

let () =
  let sites = ref 12 and days = ref 30. and subscriptions = ref 200 in
  let rec parse_args = function
    | "--sites" :: n :: rest ->
        sites := int_of_string n;
        parse_args rest
    | "--days" :: d :: rest ->
        days := float_of_string d;
        parse_args rest
    | "--subscriptions" :: n :: rest ->
        subscriptions := int_of_string n;
        parse_args rest
    | _ :: rest -> parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));

  let web = Web.generate ~seed:2026 ~sites:!sites ~pages_per_site:8 () in
  let sink, delivered = Sink.counting () in
  let xyleme = Xyleme.create ~seed:7 ~sink ~web () in

  (* A population of subscriptions over the synthetic sites: page
     watchers, product watchers, domain watchers. *)
  let accepted = ref 0 in
  for i = 0 to !subscriptions - 1 do
    let site = i mod !sites in
    let text =
      match i mod 3 with
      | 0 ->
          Printf.sprintf
            {|subscription PageWatch%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when count > 5 atmost daily|}
            i site
      | 1 ->
          Printf.sprintf
            {|subscription ProductWatch%d
monitoring
where new self\\product contains "camera"
  and URL extends "http://site%d.example.org/"
report when immediate|}
            i site
      | _ ->
          Printf.sprintf
            {|subscription DomainWatch%d
monitoring
where domain = "commerce" and modified self and self\\price
report when count > 10 atmost weekly|}
            i
    in
    match Xyleme.subscribe xyleme ~owner:(Printf.sprintf "user%d@example.org" i) ~text with
    | Ok _ -> incr accepted
    | Error e ->
        Printf.printf "subscription %d rejected: %s\n" i
          (Xy_submgr.Manager.error_to_string e)
  done;
  Printf.printf "installed %d subscriptions over %d sites\n%!" !accepted !sites;

  (* Crawl for a simulated month, reporting weekly progress. *)
  Xyleme.discover xyleme;
  let step = 6. *. 3600. in
  let steps_per_week = int_of_float (7. *. 86400. /. step) in
  let weeks = int_of_float (ceil (!days /. 7.)) in
  let wall_start = Unix.gettimeofday () in
  for week = 1 to weeks do
    for _ = 1 to steps_per_week do
      Xyleme.advance xyleme ~seconds:step;
      ignore (Xyleme.crawl_step xyleme ~limit:500)
    done;
    let stats = Xyleme.stats xyleme in
    Printf.printf
      "week %d: fetched=%d stored=%d alerts=%d notifications=%d reports=%d\n%!"
      week stats.Xyleme.documents_fetched stats.Xyleme.documents_stored
      stats.Xyleme.alerts_sent stats.Xyleme.notifications stats.Xyleme.reports
  done;
  let wall = Unix.gettimeofday () -. wall_start in

  let stats = Xyleme.stats xyleme in
  Printf.printf "\nafter %.0f simulated days (%.2fs wall clock):\n" !days wall;
  Printf.printf "  pages on the web        : %d\n" (Web.page_count web);
  Printf.printf "  documents fetched       : %d\n" stats.Xyleme.documents_fetched;
  Printf.printf "  documents warehoused    : %d\n" stats.Xyleme.documents_stored;
  Printf.printf "  atomic events (Card A)  : %d\n" stats.Xyleme.atomic_events;
  Printf.printf "  complex events (Card C) : %d\n" stats.Xyleme.complex_events;
  Printf.printf "  alerts to the MQP       : %d\n" stats.Xyleme.alerts_sent;
  Printf.printf "  notifications emitted   : %d\n" stats.Xyleme.notifications;
  Printf.printf "  reports delivered       : %d (%d recipients reached)\n"
    stats.Xyleme.reports !delivered
