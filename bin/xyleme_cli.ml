(* xyleme — command-line driver for the monitoring system.

     xyleme check <subscription-file>     validate a subscription
     xyleme query -q <query> <doc.xml>    run a query against a document
     xyleme diff <old.xml> <new.xml>      XID delta between two versions
     xyleme simulate [...]                run the synthetic-web monitor *)

open Cmdliner

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run path =
    let text = read_file path in
    match Xy_sublang.S_parser.parse text with
    | exception Xy_sublang.S_parser.Error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | ast -> (
        match Xy_sublang.S_compile.validate ast with
        | exception Xy_sublang.S_compile.Rejected reason ->
            Printf.eprintf "%s: rejected: %s\n" path reason;
            exit 1
        | compiled ->
            Printf.printf "subscription %s: OK\n" ast.Xy_sublang.S_ast.name;
            List.iteri
              (fun i cm ->
                Printf.printf
                  "  monitoring query %d (%s): %d complex event(s)\n" (i + 1)
                  cm.Xy_sublang.S_compile.cm_name
                  (List.length cm.Xy_sublang.S_compile.cm_disjuncts);
                List.iter
                  (fun disjunct ->
                    Printf.printf "    complex event:\n";
                    List.iter
                      (fun c ->
                        Printf.printf "      - %s%s\n"
                          (Xy_events.Atomic.to_string c)
                          (if Xy_events.Atomic.is_weak c then "  (weak)" else ""))
                      disjunct)
                  cm.Xy_sublang.S_compile.cm_disjuncts)
              compiled;
            List.iter
              (fun c ->
                Printf.printf "  continuous query %s (%s)\n" c.Xy_sublang.S_ast.c_name
                  (match c.Xy_sublang.S_ast.c_when with
                  | Xy_sublang.S_ast.T_frequency f ->
                      Xy_sublang.S_ast.frequency_to_string f
                  | Xy_sublang.S_ast.T_notification { tag; _ } -> "on " ^ tag))
              ast.Xy_sublang.S_ast.continuous)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "check" ~doc:"Parse and validate a subscription file")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* query *)

let query_cmd =
  let run query_text doc_path =
    let doc = Xy_xml.Parser.parse (read_file doc_path) in
    match Xy_query.Parser.parse query_text with
    | exception Xy_query.Parser.Error { line; message } ->
        Printf.eprintf "query:%d: %s\n" line message;
        exit 1
    | query ->
        let nodes =
          Xy_query.Eval.eval query (Xy_query.Eval.env doc.Xy_xml.Types.root)
        in
        List.iter
          (fun node ->
            match node with
            | Xy_xml.Types.Element e ->
                print_endline (Xy_xml.Printer.element_to_string ~indent:2 e)
            | Xy_xml.Types.Text s -> print_endline s
            | Xy_xml.Types.Cdata s -> print_endline s
            | Xy_xml.Types.Comment _ | Xy_xml.Types.Pi _ -> ())
          nodes
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"select/from/where query text")
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a query against an XML document")
    Term.(const run $ query $ doc)

(* ------------------------------------------------------------------ *)
(* diff *)

let diff_cmd =
  let run old_path new_path =
    let old_doc = Xy_xml.Parser.parse (read_file old_path) in
    let new_doc = Xy_xml.Parser.parse (read_file new_path) in
    let gen = Xy_xml.Xid.gen () in
    let old_tree = Xy_xml.Xid.label gen old_doc.Xy_xml.Types.root in
    let delta, _ = Xy_diff.Diff.diff ~gen old_tree new_doc.Xy_xml.Types.root in
    let name = Filename.remove_extension (Filename.basename old_path) in
    print_endline
      (Xy_xml.Printer.element_to_string ~indent:2
         (Xy_diff.Delta.to_xml ~name delta))
  in
  let old_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.xml") in
  let new_path = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.xml") in
  Cmd.v
    (Cmd.info "diff" ~doc:"Print the XID delta document between two versions")
    Term.(const run $ old_path $ new_path)

(* ------------------------------------------------------------------ *)
(* validate *)

let validate_cmd =
  let run doc_path =
    let doc = Xy_xml.Parser.parse (read_file doc_path) in
    let declarations = Xy_xml.Dtd.declarations_of_doc doc in
    if
      declarations.Xy_xml.Dtd.elements = []
      && declarations.Xy_xml.Dtd.attributes = []
    then Printf.printf "%s: no DTD declarations (trivially valid)\n" doc_path
    else begin
      match Xy_xml.Dtd.validate declarations doc.Xy_xml.Types.root with
      | [] ->
          Printf.printf "%s: valid against its internal DTD subset (%d element declarations)\n"
            doc_path
            (List.length declarations.Xy_xml.Dtd.elements)
      | violations ->
          List.iter
            (fun v ->
              Printf.printf "%s: %s\n" doc_path (Xy_xml.Dtd.violation_to_string v))
            violations;
          exit 1
    end
  in
  let doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check a document against its internal DTD subset")
    Term.(const run $ doc)

(* ------------------------------------------------------------------ *)
(* simulate / stats *)

(* One end-to-end run over the synthetic web; shared by [simulate]
   (headline numbers, optional snapshot), [stats] (snapshot only) and
   [trace] (sampled per-document traces; immediate reports so the
   sampled documents' journeys reach the reporter synchronously). *)
(* The live telemetry endpoint serves scrapes from a background thread
   while the pipeline runs on this one; every route reads through
   thread-safe snapshots. *)
let start_telemetry xyleme port =
  let server =
    Xy_telemetry.Telemetry.start ~port
      ~routes:
        [
          ( "/metrics",
            fun () ->
              Xy_telemetry.Telemetry.text
                (Xy_telemetry.Telemetry.prometheus_of_snapshot
                   (Xy_obs.Obs.snapshot (Xy_system.Xyleme.obs xyleme))) );
          ( "/health",
            fun () ->
              let stats = Xy_system.Xyleme.stats xyleme in
              Xy_telemetry.Telemetry.json
                (Printf.sprintf
                   {|{"status":"ok","steps_done":%d,"restarts":%d,"virtual_now":%g,"documents_fetched":%d,"documents_stored":%d,"notifications":%d,"reports":%d}|}
                   (Xy_system.Xyleme.steps_done xyleme)
                   (Xy_system.Xyleme.restarts xyleme)
                   (Xy_util.Clock.now (Xy_system.Xyleme.clock xyleme))
                   stats.Xy_system.Xyleme.documents_fetched
                   stats.Xy_system.Xyleme.documents_stored
                   stats.Xy_system.Xyleme.notifications
                   stats.Xy_system.Xyleme.reports) );
          ( "/slo",
            fun () ->
              Xy_telemetry.Telemetry.json
                (Xy_slo.Slo.reports_to_json
                   (Xy_system.Xyleme.slo_reports xyleme)) );
          ( "/traces",
            fun () ->
              Xy_telemetry.Telemetry.jsonl
                (Xy_trace.Trace.to_jsonl_string
                   (Xy_system.Xyleme.tracer xyleme)) );
        ]
      ()
  in
  Printf.printf "telemetry: http://127.0.0.1:%d (/metrics /health /slo /traces)\n%!"
    (Xy_telemetry.Telemetry.port server);
  server

let run_simulation ?(trace_every = 0) ?algorithm ?fault_plan
    ?(report_clause = "report when count > 5 atmost daily") ?durable_dir
    ?(checkpoint_every = 0) ?kill_after ?(restore = false) ?sync_every
    ?segment_bytes ?slos ?telemetry_port ?serve_port ?(linger = 0.) ?parallel
    ~sites ~days ~subscriptions ~seed () =
  let web = Xy_crawler.Synthetic_web.generate ~seed ~sites ~pages_per_site:8 () in
  let counting_sink, delivered = Xy_reporter.Sink.counting () in
  (* A durable run also writes every delivery into the directory's
     report ledger — the artifact two runs are diffed by. *)
  let sink =
    match durable_dir with
    | None -> counting_sink
    | Some dir ->
        Xy_reporter.Sink.tee counting_sink
          (Xy_reporter.Sink.ledger ~path:(Filename.concat dir "reports.log") ())
  in
  let xyleme =
    if restore then begin
      let dir =
        match durable_dir with
        | Some dir -> dir
        | None -> prerr_endline "--restore needs --durable DIR"; exit 2
      in
      match
        Xy_system.Xyleme.restore ~seed ?algorithm ?fault_plan ~sink ~web
          ?slos ?parallel ?serve_port ?sync_every ?segment_bytes ~dir ()
      with
      | Error e ->
          Printf.eprintf "restore failed: %s\n" e;
          exit 1
      | Ok (xyleme, info) ->
          Printf.printf
            "restored %s: generation %d, %d subscription(s), %d txn(s) \
             replayed (WAL tail %s), %d fetch(es) re-queued, %d report(s) \
             re-delivered; resuming at step %d\n"
            dir info.Xy_system.Xyleme.generation
            info.Xy_system.Xyleme.subscriptions_recovered
            info.Xy_system.Xyleme.txns_replayed
            (match info.Xy_system.Xyleme.wal_tail with
            | Xy_durable.Durable.Clean -> "clean"
            | Xy_durable.Durable.Torn -> "torn"
            | Xy_durable.Durable.Corrupt -> "corrupt")
            info.Xy_system.Xyleme.requeued_fetches
            info.Xy_system.Xyleme.redelivered_reports
            (Xy_system.Xyleme.steps_done xyleme);
          xyleme
    end
    else
      Xy_system.Xyleme.create ~seed ?algorithm ?fault_plan ~sink ~web ?slos
        ?parallel ?serve_port ?durable_dir ?sync_every ?segment_bytes ()
  in
  (* Stderr, not stdout: convergence checks diff the stats lines of a
     served run against a plain one. *)
  Option.iter
    (fun s ->
      Printf.eprintf "serve: wire protocol on port %d\n%!"
        (Xy_serve.Serve.port s))
    (Xy_system.Xyleme.serve xyleme);
  let telemetry = Option.map (start_telemetry xyleme) telemetry_port in
  if trace_every > 0 then
    Xy_trace.Trace.set_sampling (Xy_system.Xyleme.tracer xyleme)
      ~every:trace_every;
  let accepted = ref 0 in
  if not restore then
    for i = 0 to subscriptions - 1 do
      let text =
        Printf.sprintf
          {|subscription S%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
%s|}
          i (i mod sites) report_clause
      in
      match Xy_system.Xyleme.subscribe xyleme ~owner:(Printf.sprintf "u%d" i) ~text with
      | Ok _ -> incr accepted
      | Error _ -> ()
    done
  else accepted := Xy_submgr.Manager.subscription_count (Xy_system.Xyleme.manager xyleme);
  Option.iter
    (fun k -> Xy_fault.Fault.arm_after (Xy_system.Xyleme.faults xyleme) "crash" k)
    kill_after;
  (try
     if durable_dir = None then
       Xy_system.Xyleme.run xyleme ~days ~step:(6. *. 3600.) ~fetch_limit:500
     else
       Xy_system.Xyleme.run_resumable ~checkpoint_every xyleme ~days
         ~step:(6. *. 3600.) ~fetch_limit:500
   with Xy_fault.Fault.Crash label ->
     (* The injected kill: leave the durable directory exactly as a
        real [kill -9] would — the next invocation restores from it. *)
     Printf.printf
       "killed by injected crash at %s (step %d); restart with --restore\n"
       label
       (Xy_system.Xyleme.steps_done xyleme));
  if
    linger > 0.
    && (telemetry <> None || Option.is_some (Xy_system.Xyleme.serve xyleme))
  then begin
    if telemetry <> None then
      Printf.printf "telemetry: serving for another %.0fs (scrape now)\n%!"
        linger;
    if Option.is_some (Xy_system.Xyleme.serve xyleme) then begin
      (* keep draining wire mutations so late subscribers and acks are
         honoured while the endpoints linger *)
      let deadline = Unix.gettimeofday () +. linger in
      while Unix.gettimeofday () < deadline do
        ignore (Xy_system.Xyleme.serve_pump xyleme);
        Thread.delay 0.05
      done
    end
    else Thread.delay linger
  end;
  Option.iter Xy_telemetry.Telemetry.stop telemetry;
  Xy_system.Xyleme.stop_serve xyleme;
  (xyleme, !accepted, !delivered)

let print_snapshot ~xml xyleme =
  let snapshot = Xy_obs.Obs.snapshot (Xy_system.Xyleme.obs xyleme) in
  if xml then print_string (Xy_obs.Obs.Snapshot.to_xml_string snapshot)
  else Format.printf "%a@." Xy_obs.Obs.Snapshot.pp snapshot

(* The freeze/delta lifecycle of the compact matcher, shown whenever
   the processor runs `--algorithm aes-compact`. *)
let print_compact_stats xyleme =
  match Xy_core.Mqp.compact_stats (Xy_system.Xyleme.mqp xyleme) with
  | None -> ()
  | Some cs ->
      Printf.printf
        "aes-compact: frozen %d complex event(s) in %d cell(s) / %d mark(s) \
         (%d words); delta %d, tombstones %d; %d freeze(s), refreeze \
         threshold %d\n"
        cs.Xy_core.Aes_compact.frozen_complex
        cs.Xy_core.Aes_compact.frozen_cells cs.Xy_core.Aes_compact.frozen_marks
        cs.Xy_core.Aes_compact.frozen_words
        cs.Xy_core.Aes_compact.delta_complex
        cs.Xy_core.Aes_compact.tombstones cs.Xy_core.Aes_compact.refreezes
        cs.Xy_core.Aes_compact.refreeze_threshold

let print_trace_summary tracer =
  Printf.printf "traces: %d sampled, %d completed (ring keeps the last %d)\n"
    (Xy_trace.Trace.started tracer)
    (Xy_trace.Trace.completed tracer)
    (List.length (Xy_trace.Trace.traces tracer));
  match Xy_trace.Trace.summary tracer with
  | [] -> ()
  | stats ->
      Printf.printf "per-stage totals over retained traces:\n";
      List.iter
        (fun s ->
          Printf.printf "  %-12s %6d span(s)  total %9.3f ms  max %8.3f ms\n"
            s.Xy_trace.Trace.st_stage s.Xy_trace.Trace.st_spans
            (s.Xy_trace.Trace.st_total_wall *. 1e3)
            (s.Xy_trace.Trace.st_max_wall *. 1e3))
        stats

let print_slowest ~k tracer =
  let stages trace =
    List.sort_uniq compare
      (List.map (fun s -> s.Xy_trace.Trace.sp_stage) trace.Xy_trace.Trace.tr_spans)
  in
  let end_to_end trace =
    List.for_all
      (fun stage -> List.mem stage (stages trace))
      [ "crawler"; "alerters"; "mqp"; "reporter" ]
  in
  (* Lead with complete fetch→alert→match→report journeys — the
     critical path the paper's throughput claim is about — then pad
     with whatever else was slowest. *)
  let full, partial =
    List.partition end_to_end (Xy_trace.Trace.slowest tracer ~k:max_int)
  in
  let shown = List.filteri (fun i _ -> i < k) (full @ partial) in
  List.iter (fun trace -> Format.printf "%a@." Xy_trace.Trace.pp_trace trace) shown

let sites_arg = Arg.(value & opt int 8 & info [ "sites" ] ~docv:"N")
let days_arg = Arg.(value & opt float 14. & info [ "days" ] ~docv:"D")

let subscriptions_arg =
  Arg.(value & opt int 100 & info [ "subscriptions" ] ~docv:"N")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")

let faults_arg =
  let parse s =
    match Xy_fault.Fault.parse_spec s with
    | Ok spec -> `Ok spec
    | Error msg -> `Error msg
  in
  let print ppf spec =
    Format.pp_print_string ppf (Xy_fault.Fault.spec_to_string spec)
  in
  let spec_conv = (parse, print) in
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject failures during the run: $(docv) is \
           point=RATE(,point=RATE)*, e.g. $(b,fetch=0.05,malformed=0.01). \
           The schedule is drawn from $(b,--seed), so the same seed and \
           spec reproduce the same failures.  Points: fetch, malformed, \
           torn_write, short_write, bus_stall, bus_drop, worker; wire \
           (require $(b,--serve)): conn_drop, partial_write, net_delay, \
           net_mangle")

let print_fault_report xyleme =
  let faults = Xy_system.Xyleme.faults xyleme in
  let wire = Xy_system.Xyleme.wire_faults xyleme in
  if Xy_fault.Fault.active faults || Xy_fault.Fault.active wire then begin
    Printf.printf "faults injected:";
    List.iter
      (fun (point, _) ->
        (* pipeline points draw from one injector, wire points from
           the serving surface's; a point fires in exactly one *)
        let count =
          Xy_fault.Fault.injected faults point
          + Xy_fault.Fault.injected wire point
        in
        if count > 0 then Printf.printf " %s=%d" point count)
      Xy_fault.Fault.points;
    print_newline ();
    let snapshot = Xy_obs.Obs.snapshot (Xy_system.Xyleme.obs xyleme) in
    let fault_counters =
      List.filter_map
        (fun entry ->
          match entry with
          | { Xy_obs.Obs.Snapshot.stage = "fault"; name;
              value = Xy_obs.Obs.Snapshot.Counter v } -> Some (name, v)
          | _ -> None)
        snapshot.Xy_obs.Obs.Snapshot.entries
    in
    if fault_counters <> [] then begin
      Printf.printf "recovery:";
      List.iter
        (fun (name, v) -> Printf.printf " %s=%d" name v)
        fault_counters;
      print_newline ()
    end
  end

let algorithm_arg =
  let algorithms =
    List.map
      (fun a -> (Xy_core.Mqp.algorithm_name_of a, a))
      Xy_core.Mqp.algorithms
  in
  Arg.(
    value
    & opt (enum algorithms) Xy_core.Mqp.Use_aes
    & info [ "algorithm" ] ~docv:"ALG"
        ~doc:
          "Matching algorithm for the query processor: $(b,aes) (the paper's \
           hash-tree), $(b,aes-compact) (frozen flat arrays + delta \
           overlay), $(b,naive) or $(b,counting)")

let durable_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "durable" ] ~docv:"DIR"
        ~doc:
          "Run durably: checkpoint + write-ahead log under $(docv), report \
           deliveries ledgered to $(docv)/reports.log.  A killed run is \
           resumed with $(b,--restore)")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint the durable run every $(docv) steps (0 = never)")

let kill_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-after" ] ~docv:"K"
        ~doc:
          "Die (simulated kill -9, discarding the open transaction) at the \
           $(docv)-th crash point of the run — crash testing for \
           $(b,--durable)")

let restore_flag =
  Arg.(
    value & flag
    & info [ "restore" ]
        ~doc:
          "Warm-restart from the $(b,--durable) directory instead of \
           starting fresh, and finish the remaining steps")

let sync_every_arg =
  Arg.(
    value & opt int 32
    & info [ "sync-every" ] ~docv:"N"
        ~doc:
          "WAL group-commit batch size: fsync once per $(docv) committed \
           transactions (1 = sync every commit).  Report deliveries always \
           force a sync first — at-least-once delivery holds at any setting")

let segment_kib_arg =
  Arg.(
    value & opt int 4096
    & info [ "segment-kib" ] ~docv:"KIB"
        ~doc:
          "WAL segment rotation threshold in KiB: the log rolls into a new \
           bounded segment once the current one exceeds $(docv) KiB")

let telemetry_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "telemetry" ] ~docv:"PORT"
        ~doc:
          "Serve live telemetry on http://127.0.0.1:$(docv) while the run \
           executes: $(b,/metrics) (Prometheus text), $(b,/health) and \
           $(b,/slo) (JSON), $(b,/traces) (JSONL).  Port 0 picks an \
           ephemeral port (printed at startup)")

let serve_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Serve the wire protocol on TCP port $(docv) while the run \
           executes: remote clients HELLO/SUBSCRIBE/UNSUBSCRIBE/STATUS over \
           CRC-framed messages and receive streamed report frames they ACK \
           by delivery seq.  Port 0 picks an ephemeral port (printed on \
           stderr at startup)")

let linger_arg =
  Arg.(
    value & opt float 0.
    & info [ "linger" ] ~docv:"SECONDS"
        ~doc:
          "Keep the $(b,--telemetry) and $(b,--serve) endpoints up for \
           $(docv) wall-clock seconds after the run finishes, so the final \
           state can be scraped and late clients served")

let slo_arg =
  let parse s =
    match Xy_slo.Slo.parse s with
    | Ok objective -> `Ok objective
    | Error msg -> `Error msg
  in
  let print ppf (o : Xy_slo.Slo.objective) =
    Format.fprintf ppf "%s" o.Xy_slo.Slo.o_name
  in
  let slo_conv = (parse, print) in
  Arg.(
    value
    & opt_all slo_conv []
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Arm a freshness objective (repeatable): $(docv) is \
           NAME:STAGE/METRIC<=THRESHOLD:TARGET:FAST/SLOW[:BURN], e.g. \
           $(b,notify:reporter/notification_lag<=86400:0.95:1d/4d:1).  \
           Evaluated every virtual step; a breach ingests an SLO document \
           at xyleme://self/slo/NAME.xml through the normal pipeline")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run each crawl step's fetches through $(docv) parallel loader \
           domains (the sharded crawl → match → report pipeline); 1 keeps \
           the historical serial loop.  Notifications and reports are \
           identical either way")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"M"
        ~doc:
          "Number of Monitoring Query Processor shards in the parallel \
           pipeline (defaults to $(b,--domains))")

let axis_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("docs", Xy_system.Distributed.Split_documents);
             ("subs", Xy_system.Distributed.Split_subscriptions);
           ])
        Xy_system.Distributed.Split_documents
    & info [ "axis" ] ~docv:"AXIS"
        ~doc:
          "Distribution axis for the MQP shards (paper §4.2): $(b,docs) \
           routes each alert to one shard holding all subscriptions, \
           $(b,subs) spreads the subscriptions and broadcasts each alert")

let no_steal_arg =
  Arg.(
    value & flag
    & info [ "no-steal" ]
        ~doc:"Disable work stealing between skewed MQP shards")

let parallel_of ~domains ~shards ~axis ~no_steal =
  if domains <= 1 then None
  else
    Some
      {
        Xy_system.Parallel.default_config with
        Xy_system.Parallel.domains;
        shards = Option.value ~default:domains shards;
        axis;
        steal = not no_steal;
      }

let simulate_cmd =
  let run sites days subscriptions seed algorithm fault_plan verbose
      stats_flag trace_every durable_dir checkpoint_every kill_after restore
      sync_every segment_kib slos telemetry_port serve_port linger domains
      shards axis no_steal =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let trace_every = Option.value ~default:0 trace_every in
    let parallel = parallel_of ~domains ~shards ~axis ~no_steal in
    let xyleme, accepted, delivered =
      run_simulation ~trace_every ~algorithm ?fault_plan ?durable_dir
        ~checkpoint_every ?kill_after ~restore ~sync_every
        ~segment_bytes:(segment_kib * 1024) ~slos ?telemetry_port ?serve_port
        ~linger ?parallel ~sites ~days ~subscriptions ~seed ()
    in
    let stats = Xy_system.Xyleme.stats xyleme in
    Printf.printf "simulated %.0f days over %d sites, %d subscriptions:\n" days
      sites accepted;
    Printf.printf "  fetched %d, stored %d, alerts %d, notifications %d, reports %d (%d deliveries)\n"
      stats.Xy_system.Xyleme.documents_fetched
      stats.Xy_system.Xyleme.documents_stored stats.Xy_system.Xyleme.alerts_sent
      stats.Xy_system.Xyleme.notifications stats.Xy_system.Xyleme.reports
      delivered;
    print_compact_stats xyleme;
    print_fault_report xyleme;
    List.iter
      (fun (r : Xy_slo.Slo.report) ->
        Printf.printf
          "slo %s: %s (fast burn %.2f, slow burn %.2f, %d/%d good in slow \
           window)\n"
          r.Xy_slo.Slo.r_objective.Xy_slo.Slo.o_name
          (if r.Xy_slo.Slo.r_breached then "BREACHED" else "ok")
          r.Xy_slo.Slo.r_fast_burn r.Xy_slo.Slo.r_slow_burn
          r.Xy_slo.Slo.r_good r.Xy_slo.Slo.r_total)
      (Xy_system.Xyleme.slo_reports xyleme);
    if stats_flag then print_snapshot ~xml:false xyleme;
    if trace_every > 0 then print_trace_summary (Xy_system.Xyleme.tracer xyleme)
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log pipeline events") in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print the per-stage metrics snapshot after the run")
  in
  let trace_every =
    Arg.(
      value
      & opt ~vopt:(Some 100) (some int) None
      & info [ "trace" ] ~docv:"N"
          ~doc:
            "Trace 1-in-$(docv) fetched documents (default 100) and print \
             the per-stage span summary after the run")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the monitor over a synthetic web")
    Term.(
      const run $ sites_arg $ days_arg $ subscriptions_arg $ seed_arg
      $ algorithm_arg $ faults_arg $ verbose $ stats_flag $ trace_every
      $ durable_arg $ checkpoint_every_arg $ kill_after_arg $ restore_flag
      $ sync_every_arg $ segment_kib_arg $ slo_arg $ telemetry_arg
      $ serve_port_arg $ linger_arg $ domains_arg $ shards_arg $ axis_arg
      $ no_steal_arg)

(* ------------------------------------------------------------------ *)
(* serve — run the monitor as a long-lived wire-protocol server *)

let serve_cmd =
  let run port sites seed subscriptions algorithm fault_plan verbose
      telemetry_port durable_dir restore days pace idle_deadline read_deadline
      max_connections drain =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let web =
      Xy_crawler.Synthetic_web.generate ~seed ~sites ~pages_per_site:8 ()
    in
    let serve_config =
      Xy_serve.Serve.config ~port ~max_connections ~idle_deadline
        ~read_deadline ~drain ()
    in
    let xyleme =
      if restore then begin
        let dir =
          match durable_dir with
          | Some dir -> dir
          | None ->
              prerr_endline "--restore needs --durable DIR";
              exit 2
        in
        match
          Xy_system.Xyleme.restore ~seed ~algorithm ?fault_plan ~web
            ~serve_config ~dir ()
        with
        | Error e ->
            Printf.eprintf "restore failed: %s\n" e;
            exit 1
        | Ok (xyleme, info) ->
            Printf.printf "restored %s: generation %d, %d subscription(s)\n%!"
              dir info.Xy_system.Xyleme.generation
              info.Xy_system.Xyleme.subscriptions_recovered;
            xyleme
      end
      else
        Xy_system.Xyleme.create ~seed ~algorithm ?fault_plan ~web
          ~serve_config ?durable_dir ()
    in
    (match Xy_system.Xyleme.serve xyleme with
    | Some s ->
        Printf.printf "serve: wire protocol on port %d\n%!"
          (Xy_serve.Serve.port s)
    | None -> ());
    (* optional in-process demo subscriptions; wire clients add theirs *)
    for i = 0 to subscriptions - 1 do
      let text =
        Printf.sprintf
          {|subscription S%d
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://site%d.example.org/" and modified self
report when immediate|}
          i (i mod sites)
      in
      ignore
        (Xy_system.Xyleme.subscribe xyleme ~owner:(Printf.sprintf "u%d" i)
           ~text)
    done;
    let telemetry = Option.map (start_telemetry xyleme) telemetry_port in
    let stop_requested = ref false in
    List.iter
      (fun s ->
        Sys.set_signal s (Sys.Signal_handle (fun _ -> stop_requested := true)))
      [ Sys.sigint; Sys.sigterm ];
    let step = 6. *. 3600. in
    let steps =
      if days <= 0. then max_int else int_of_float (ceil (days *. 86400. /. step))
    in
    Xy_system.Xyleme.discover xyleme;
    (try
       while
         (not !stop_requested) && Xy_system.Xyleme.steps_done xyleme < steps
       do
         Xy_system.Xyleme.advance xyleme ~seconds:step;
         ignore (Xy_system.Xyleme.crawl_step xyleme ~limit:500);
         if pace > 0. then Thread.delay pace
       done
     with Xy_fault.Fault.Crash label ->
       Printf.printf "killed by injected crash at %s (step %d)\n%!" label
         (Xy_system.Xyleme.steps_done xyleme));
    (* let in-flight acks land before tearing the endpoints down *)
    ignore (Xy_system.Xyleme.serve_pump xyleme);
    Option.iter Xy_telemetry.Telemetry.stop telemetry;
    Xy_system.Xyleme.stop_serve xyleme;
    print_fault_report xyleme;
    let stats = Xy_system.Xyleme.stats xyleme in
    Printf.printf
      "served %d step(s): fetched %d, stored %d, notifications %d, reports %d\n"
      (Xy_system.Xyleme.steps_done xyleme)
      stats.Xy_system.Xyleme.documents_fetched
      stats.Xy_system.Xyleme.documents_stored
      stats.Xy_system.Xyleme.notifications stats.Xy_system.Xyleme.reports
  in
  let port =
    Arg.(
      value & opt int 9110
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port for the wire protocol (0 picks an ephemeral port)")
  in
  let days =
    Arg.(
      value & opt float 0.
      & info [ "days" ] ~docv:"DAYS"
          ~doc:
            "Stop after this many virtual days; 0 (the default) runs until \
             SIGINT/SIGTERM")
  in
  let pace =
    Arg.(
      value & opt float 0.05
      & info [ "pace" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock sleep between virtual steps, so wire clients get \
             scheduled; 0 free-runs")
  in
  let subscriptions =
    Arg.(
      value & opt int 0
      & info [ "subscriptions" ] ~docv:"N"
          ~doc:
            "Seed $(docv) in-process demo subscriptions (wire clients \
             normally register their own)")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log pipeline events")
  in
  let idle_deadline =
    Arg.(
      value & opt float 300.
      & info [ "idle-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Evict a client that has sent no bytes (not even a PING) for \
             $(docv); 0 disables eviction")
  in
  let read_deadline =
    Arg.(
      value & opt float 30.
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Close a client that leaves a frame incomplete for $(docv) \
             (slow-loris guard); 0 disables")
  in
  let max_connections =
    Arg.(
      value & opt int 0
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Admission ceiling: shed connections beyond $(docv) with an \
             $(b,ERR busy) retry hint; 0 (the default) is unlimited")
  in
  let drain =
    Arg.(
      value & opt float 0.5
      & info [ "drain" ] ~docv:"SECONDS"
          ~doc:
            "Graceful-drain budget on shutdown: give writers up to $(docv) \
             to flush queued report frames before closing sessions")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the monitor as a long-lived server: the synthetic web evolves \
          one step per $(b,--pace), and remote clients subscribe and \
          receive report frames over the wire protocol")
    Term.(
      const run $ port $ sites_arg $ seed_arg $ subscriptions $ algorithm_arg
      $ faults_arg $ verbose $ telemetry_arg $ durable_arg $ restore_flag
      $ days $ pace $ idle_deadline $ read_deadline $ max_connections $ drain)

let stats_cmd =
  let run sites days subscriptions seed algorithm xml =
    let xyleme, _, _ =
      run_simulation ~algorithm ~sites ~days ~subscriptions ~seed ()
    in
    print_snapshot ~xml xyleme;
    if not xml then print_compact_stats xyleme
  in
  let xml =
    Arg.(value & flag & info [ "xml" ] ~doc:"Emit the snapshot as XML")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the monitor over a synthetic web and print the per-stage \
          metrics snapshot (counters, gauges, latency histograms); with \
          --algorithm aes-compact also the matcher's freeze/delta statistics")
    Term.(
      const run $ sites_arg $ days_arg $ subscriptions_arg $ seed_arg
      $ algorithm_arg $ xml)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let run sites days subscriptions seed algorithm every k jsonl xml =
    let xyleme, _, _ =
      run_simulation ~trace_every:every ~algorithm
        ~report_clause:"report when immediate" ~sites ~days ~subscriptions
        ~seed ()
    in
    let tracer = Xy_system.Xyleme.tracer xyleme in
    if jsonl then print_string (Xy_trace.Trace.to_jsonl_string tracer)
    else if xml then print_string (Xy_trace.Trace.to_xml_string tracer)
    else begin
      print_trace_summary tracer;
      Printf.printf "\nslowest traces (end-to-end journeys first):\n";
      print_slowest ~k tracer
    end
  in
  let days_arg = Arg.(value & opt float 3. & info [ "days" ] ~docv:"D") in
  let every =
    Arg.(
      value & opt int 1
      & info [ "every" ] ~docv:"N"
          ~doc:"Sample 1-in-$(docv) fetched documents (default: every one)")
  in
  let k =
    Arg.(
      value & opt int 5
      & info [ "k" ] ~docv:"K" ~doc:"Print the $(docv) slowest traces")
  in
  let jsonl =
    Arg.(
      value & flag
      & info [ "jsonl" ] ~doc:"Dump retained traces as JSON Lines instead")
  in
  let xml =
    Arg.(
      value & flag
      & info [ "xml" ]
          ~doc:"Dump retained traces as a <traces> XML document instead")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the monitor over a synthetic web with per-document tracing and \
          print the slowest sampled fetch→alert→match→report journeys with \
          their per-stage latency breakdown")
    Term.(
      const run $ sites_arg $ days_arg $ subscriptions_arg $ seed_arg
      $ algorithm_arg $ every $ k $ jsonl $ xml)

let () =
  let doc = "Xyleme change monitoring (SIGMOD 2001 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "xyleme" ~doc)
          [
            check_cmd; query_cmd; diff_cmd; validate_cmd; simulate_cmd;
            serve_cmd; stats_cmd; trace_cmd;
          ]))
